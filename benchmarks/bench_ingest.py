"""Benchmark: execution-graph ingest throughput and warm-store re-ingest.

Generates a synthetic ~50k-node execution-graph JSON (a serial chain of
mixed known/unknown ops with realistic shape payloads, serialized in
shuffled order so the topological sort does real work), writes it to a
temp file, and measures:

* **cold ingest** — full parse -> map -> toposort -> trace build,
  reported in nodes/second;
* **warm memory hit** — a second ``get_or_ingest`` of the same file
  against the in-process store tier;
* **warm disk hit** — a fresh store pointed at the same cache dir,
  loading the columnar payload instead of re-ingesting.

Run from the repo root::

    python benchmarks/bench_ingest.py [--nodes 50000] [-o FILE]

Emits ``BENCH_ingest.json``::

    {
      "nodes": 50000,
      "cold": {"seconds": ..., "nodes_per_s": ...},
      "warm_memory": {"seconds": ..., "speedup": ...},
      "warm_disk": {"seconds": ..., "speedup": ...}
    }

Exits non-zero if cold throughput drops below ``--floor`` nodes/s, if a
warm memory hit fails to beat a cold ingest by ``--warm-speedup``, or if
the whole run exceeds ``--budget`` seconds (CI regression gates).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.trace.ingest import ingest_graph
from repro.trace.store import TraceStore

KNOWN_OPS = ("conv2d", "matmul", "relu", "batch_norm", "softmax",
             "max_pool2d", "add", "linear", "layer_norm", "mul")
UNKNOWN_OPS = ("vendor_fused_op", "mystery_kernel")


def synthetic_graph(n_nodes: int, seed: int = 0) -> dict:
    """A shuffled serial-chain graph of ``n_nodes`` mixed ops."""
    rng = np.random.default_rng(seed)
    nodes = []
    for i in range(1, n_nodes + 1):
        unknown = rng.random() < 0.05
        name = str(rng.choice(UNKNOWN_OPS if unknown else KNOWN_OPS))
        shape = [int(d) for d in rng.integers(1, 65, size=2)]
        nodes.append({
            "id": i,
            "name": name,
            "parents": [i - 1] if i > 1 else [],
            "input_shapes": [shape, shape],
            "input_dtypes": ["float32", "float32"],
            "output_shapes": [shape],
            "output_dtypes": ["float32"],
        })
    order = rng.permutation(n_nodes)
    return {"schema": "mmbench-eg/1", "name": "synthetic_50k",
            "batch_size": 8, "nodes": [nodes[int(i)] for i in order]}


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=50_000)
    parser.add_argument("--floor", type=float, default=5_000.0,
                        help="minimum cold-ingest throughput (nodes/s)")
    parser.add_argument("--warm-speedup", type=float, default=5.0,
                        help="minimum warm-memory-hit speedup over cold ingest")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="wall-clock budget for the whole benchmark (s)")
    parser.add_argument("-o", "--output", default="BENCH_ingest.json")
    args = parser.parse_args(argv)

    run_start = time.perf_counter()
    graph = synthetic_graph(args.nodes)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "synthetic.json"
        path.write_text(json.dumps(graph))
        size_mb = path.stat().st_size / 1e6

        cold_s, ingested = _timed(lambda: ingest_graph(str(path)))
        nodes_per_s = args.nodes / cold_s
        print(f"cold ingest: {args.nodes:,} nodes ({size_mb:.1f} MB) in "
              f"{cold_s:.2f} s = {nodes_per_s:,.0f} nodes/s "
              f"(unknown fraction {ingested.report.unknown_fraction:.1%})")

        cache_dir = Path(tmp) / "cache"
        store = TraceStore(cache_dir)
        fill_s, _ = _timed(lambda: store.get_or_ingest(str(path)))
        warm_mem_s, _ = _timed(lambda: store.get_or_ingest(str(path)))
        print(f"store fill (ingest + disk write): {fill_s:.2f} s; "
              f"warm memory hit: {warm_mem_s * 1e3:.2f} ms "
              f"({cold_s / warm_mem_s:,.0f}x over cold)")

        fresh = TraceStore(cache_dir)
        warm_disk_s, entry = _timed(lambda: fresh.get_or_ingest(str(path)))
        assert fresh.stats["disk_hits"] == 1, "expected a disk hit"
        assert entry.extra["ingest"]["n_nodes"] == args.nodes
        print(f"warm disk hit (fresh process): {warm_disk_s:.2f} s "
              f"({cold_s / warm_disk_s:.1f}x over cold)")

    total_s = time.perf_counter() - run_start
    payload = {
        "bench": "ingest",
        "nodes": args.nodes,
        "graph_mb": round(size_mb, 2),
        "unknown_fraction": round(ingested.report.unknown_fraction, 4),
        "cold": {"seconds": round(cold_s, 4),
                 "nodes_per_s": round(nodes_per_s, 1)},
        "warm_memory": {"seconds": round(warm_mem_s, 6),
                        "speedup": round(cold_s / warm_mem_s, 1)},
        "warm_disk": {"seconds": round(warm_disk_s, 4),
                      "speedup": round(cold_s / warm_disk_s, 1)},
        "total_seconds": round(total_s, 2),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (total {total_s:.1f} s)")

    failed = False
    if nodes_per_s < args.floor:
        print(f"FAIL: cold ingest below {args.floor:,.0f} nodes/s")
        failed = True
    if cold_s / warm_mem_s < args.warm_speedup:
        print(f"FAIL: warm memory hit under {args.warm_speedup:.0f}x cold")
        failed = True
    if total_s > args.budget:
        print(f"FAIL: benchmark exceeded {args.budget:.0f} s budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
