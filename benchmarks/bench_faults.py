"""Benchmark: million-request chaos scenarios vs fault-free serving.

Measures what the fault-injection subsystem costs on the event-loop hot
path: the same nine-tenant, four-device mixed-serving run as
``bench_serving_mix.py`` is simulated fault-free, then under the
``single-failure`` and ``thermal-brownout`` chaos scenarios (with retry
accounting and the conservation invariant checked at every event). The
gate fails if either faulted run takes more than ``--overhead`` (default
25%) longer than the fault-free baseline — the fault branches must stay
off the fast path when nothing is failing and cheap when something is.

Run from the repo root::

    python benchmarks/bench_faults.py [--n-requests 1000000] [-o FILE]

Emits ``BENCH_faults.json``::

    {
      "n_requests": 1000000,
      "baseline_wall_s": ...,
      "scenarios": {
        "single-failure": {"wall_s": ..., "overhead": ..., "shed": ...},
        "thermal-brownout": {...}
      }
    }
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.serving import (
    AdaptiveSLOPolicy,
    RetryPolicy,
    chaos_plan,
    make_tenants,
    scenario_requests,
    simulate_mixed,
)
from repro.workloads.registry import list_workloads

DEVICES = ("2080ti", "2080ti", "orin", "nano")
SLO = 50e-3
SCENARIOS = ("single-failure", "thermal-brownout")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-requests", type=int, default=1_000_000)
    parser.add_argument("--arrival-rate", type=float, default=100_000.0)
    parser.add_argument("--scenario", default="heavy-head",
                        help="traffic scenario the chaos plans run against")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--overhead", type=float, default=0.25,
                        help="maximum acceptable faulted wall-time overhead "
                             "over the fault-free baseline (CI gate)")
    parser.add_argument("-o", "--output", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    tenants = make_tenants(
        list_workloads(),
        policy_factory=lambda _w: AdaptiveSLOPolicy(SLO),
        slo=SLO, seed=args.seed,
    )
    for spec in tenants:  # warm anchor curves out of the timed section
        for device in set(DEVICES):
            spec.cost.latency(device, 1)
    requests = scenario_requests(args.scenario, tenants, args.n_requests,
                                 arrival_rate=args.arrival_rate,
                                 seed=args.seed)
    horizon = args.n_requests / args.arrival_rate

    t0 = time.perf_counter()
    base = simulate_mixed(tenants, devices=DEVICES, requests=requests,
                          arrival_rate=args.arrival_rate, seed=args.seed)
    baseline_s = time.perf_counter() - t0
    print(f"fault-free baseline: {base.n_requests:,} requests in "
          f"{baseline_s:.2f}s ({base.n_requests / baseline_s:,.0f} req/s)")

    failed = False
    per_scenario = {}
    for name in SCENARIOS:
        plan = chaos_plan(name, DEVICES, horizon, seed=args.seed)
        t0 = time.perf_counter()
        report = simulate_mixed(tenants, devices=DEVICES, requests=requests,
                                arrival_rate=args.arrival_rate,
                                seed=args.seed, faults=plan,
                                retry=RetryPolicy())
        wall_s = time.perf_counter() - t0
        fs = report.fault_stats
        overhead = wall_s / baseline_s - 1.0
        per_scenario[name] = {
            "wall_s": round(wall_s, 3),
            "overhead": round(overhead, 4),
            "plan_events": fs.plan_events,
            "completed": fs.completed,
            "shed": fs.shed,
            "retries": fs.retries,
            "total_downtime_s": round(fs.total_downtime, 4),
        }
        print(f"{name}: {wall_s:.2f}s ({overhead:+.1%} vs baseline), "
              f"{fs.retries:,} retries, {fs.shed:,} shed, "
              f"{fs.total_downtime:.2f}s downtime")
        if fs.completed + fs.shed != fs.issued:
            print(f"FAIL: {name} lost requests "
                  f"({fs.completed} + {fs.shed} != {fs.issued})")
            failed = True
        if overhead > args.overhead:
            print(f"FAIL: {name} overhead {overhead:.1%} exceeds "
                  f"{args.overhead:.0%} gate")
            failed = True

    payload = {
        "bench": "faults",
        "n_requests": base.n_requests,
        "traffic_scenario": args.scenario,
        "arrival_rate": args.arrival_rate,
        "devices": list(DEVICES),
        "baseline_wall_s": round(baseline_s, 3),
        "overhead_gate": args.overhead,
        "scenarios": per_scenario,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
