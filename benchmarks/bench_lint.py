"""Benchmark: static lint throughput over traces and the fixture corpus.

Lint rules are pure array math, so they must stay effectively free next
to capture/ingest/pricing. This benchmark measures:

* **50k-kernel trace lint** — every trace rule over a synthetic ingested
  trace (the hot pre-run hook path), gated in low milliseconds;
* **full corpus lint** — every execution-graph fixture under
  ``tests/fixtures/execution_graphs/`` plus a captured trace for each of
  the nine built-in workloads, gated under ``--corpus-budget`` (250 ms
  default — the CI regression gate).

Captures and ingests happen *outside* the timed regions; only the lint
itself is on the clock.

Run from the repo root::

    python benchmarks/bench_lint.py [--nodes 50000] [-o FILE]

Emits ``BENCH_lint.json``::

    {
      "trace": {"kernels": 50000, "ms": ..., "kernels_per_s": ...},
      "corpus": {"artifacts": ..., "diagnostics": ..., "ms": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from bench_ingest import synthetic_graph

from repro.lint import lint_path, lint_trace
from repro.trace.ingest import ingest_graph
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads

FIXTURES = Path(__file__).parent.parent / "tests" / "fixtures" / \
    "execution_graphs"


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=50_000)
    parser.add_argument("--trace-budget-ms", type=float, default=50.0,
                        help="budget for linting the 50k-kernel trace (ms)")
    parser.add_argument("--corpus-budget-ms", type=float, default=250.0,
                        help="budget for linting the full corpus (ms)")
    parser.add_argument("-o", "--output", default="BENCH_lint.json")
    args = parser.parse_args(argv)

    # -- 50k-kernel trace: the pre-run hook path ------------------------------
    graph = synthetic_graph(args.nodes)
    ingested = ingest_graph(graph)
    lint_trace(ingested)  # warm the numpy/jit caches off the clock
    trace_s, report = _timed(lambda: lint_trace(ingested, source="synthetic"))
    trace_ms = trace_s * 1e3
    print(f"trace lint: {args.nodes:,} kernels in {trace_ms:.2f} ms "
          f"= {args.nodes / trace_s:,.0f} kernels/s "
          f"({len(report)} diagnostic(s))")

    # -- full corpus: fixtures + the nine workloads ----------------------------
    fixture_paths = sorted(FIXTURES.glob("*.json"))
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        captured = [store.get_or_capture(w, batch_size=8, backend="meta")
                    for w in sorted(list_workloads())]

        def lint_corpus():
            n_diags = 0
            for path in fixture_paths:
                n_diags += len(lint_path(path))
            for stored in captured:
                n_diags += len(lint_trace(stored,
                                          source=stored.model_name))
            return n_diags

        lint_corpus()  # warm
        corpus_s, n_diags = _timed(lint_corpus)
    corpus_ms = corpus_s * 1e3
    n_artifacts = len(fixture_paths) + len(captured)
    print(f"corpus lint: {n_artifacts} artifacts in {corpus_ms:.2f} ms "
          f"({n_diags} diagnostic(s))")

    payload = {
        "bench": "lint",
        "trace": {"kernels": args.nodes, "ms": round(trace_ms, 3),
                  "kernels_per_s": round(args.nodes / trace_s, 1)},
        "corpus": {"artifacts": n_artifacts, "diagnostics": n_diags,
                   "ms": round(corpus_ms, 3)},
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    if trace_ms > args.trace_budget_ms:
        print(f"FAIL: 50k-kernel trace lint over "
              f"{args.trace_budget_ms:.0f} ms budget")
        failed = True
    if corpus_ms > args.corpus_budget_ms:
        print(f"FAIL: corpus lint over {args.corpus_budget_ms:.0f} ms budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
