"""Benchmark: eager vs meta trace capture, and warm trace-store hits.

Seeds the performance trajectory for the meta execution backend. For each
of the nine registry workloads it times one traced inference capture on
the eager (dense numpy) backend and on the meta (shape-only) backend,
checks the two traces agree on event count and total FLOPs, then times a
warm :class:`~repro.trace.store.TraceStore` hit to show a cached key
skips tracing entirely.

Run from the repo root::

    python benchmarks/bench_trace_backend.py [--batch-size 64] [-o FILE]

Emits ``BENCH_trace_backend.json``::

    {
      "batch_size": 64,
      "workloads": {"avmnist": {"eager_s": ..., "meta_s": ..., "speedup": ...}, ...},
      "largest_workload": {"name": ..., "speedup": ...},
      "warm_store": {"capture_s": ..., "warm_hit_s": ..., "speedup": ...}
    }
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.trace.store import TraceStore
from repro.workloads.registry import get_workload, list_workloads


def _best_of(n: int, fn):
    """Minimum wall time of ``n`` runs (standard noise suppression)."""
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return min(times), out


def bench_workload(name: str, batch_size: int, repeats: int) -> dict:
    model = get_workload(name).build(seed=0)
    profiler = MMBenchProfiler()
    eager_batch = random_batch(model.shapes, batch_size, seed=0)
    meta_batch = random_batch(model.shapes, batch_size, seed=0, backend="meta")

    eager_s, eager_trace = _best_of(repeats, lambda: profiler.capture(model, eager_batch))
    meta_s, meta_trace = _best_of(repeats, lambda: profiler.capture(model, meta_batch))

    if len(meta_trace.kernels) != len(eager_trace.kernels):
        raise AssertionError(f"{name}: event count diverged")
    if meta_trace.total_flops != eager_trace.total_flops:
        raise AssertionError(f"{name}: FLOP totals diverged")

    return {
        "eager_s": round(eager_s, 6),
        "meta_s": round(meta_s, 6),
        "speedup": round(eager_s / meta_s, 2),
        "kernels": len(eager_trace.kernels),
        "total_flops": eager_trace.total_flops,
    }


def bench_warm_store(workload: str, batch_size: int) -> dict:
    store = TraceStore()
    t0 = time.perf_counter()
    store.get_or_capture(workload, batch_size=batch_size, backend="meta")
    capture_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    store.get_or_capture(workload, batch_size=batch_size, backend="meta")
    warm_s = time.perf_counter() - t0
    assert store.stats["captures"] == 1, "warm hit must not re-trace"
    return {
        "capture_s": round(capture_s, 6),
        "warm_hit_s": round(warm_s, 6),
        "speedup": round(capture_s / max(warm_s, 1e-9), 1),
        "captures": store.stats["captures"],
        "hits": store.stats["hits"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("-o", "--output", default="BENCH_trace_backend.json")
    args = parser.parse_args(argv)

    results: dict[str, dict] = {}
    for name in list_workloads():
        results[name] = bench_workload(name, args.batch_size, args.repeats)
        print(f"{name:>14}: eager {results[name]['eager_s'] * 1e3:8.1f} ms   "
              f"meta {results[name]['meta_s'] * 1e3:7.1f} ms   "
              f"{results[name]['speedup']:7.1f}x")

    largest = max(results, key=lambda n: results[n]["eager_s"])
    warm = bench_warm_store(largest, args.batch_size)
    print(f"largest workload by trace time: {largest} "
          f"({results[largest]['speedup']:.1f}x meta speedup)")
    print(f"warm trace-store hit on {largest}: {warm['warm_hit_s'] * 1e6:.0f} us "
          f"vs {warm['capture_s'] * 1e3:.1f} ms cold ({warm['speedup']:.0f}x)")

    payload = {
        "bench": "trace_backend",
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "workloads": results,
        "largest_workload": {"name": largest, "speedup": results[largest]["speedup"]},
        "warm_store": warm,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if results[largest]["speedup"] < 10.0:
        print("FAIL: meta speedup on the largest workload is below 10x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
