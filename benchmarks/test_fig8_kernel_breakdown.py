"""Figure 8: kernel operation breakdown of the three stages.

Paper shapes asserted: different stages within an application are
dominated by different kernel categories, and different modality encoders
have very different mixes (MM-IMDB's VGG branch is Conv/Gemm heavy while
its ALBERT branch is element-wise/Gemm with no convolutions at all).
"""

from collections import defaultdict

from benchmarks.conftest import print_table
from repro.core.analysis.heterogeneity import kernel_breakdown_analysis
from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload, list_workloads


def test_fig8_kernel_type_breakdown(benchmark):
    data = benchmark.pedantic(
        lambda: kernel_breakdown_analysis(workloads=list_workloads(), batch_size=32),
        rounds=1, iterations=1,
    )

    rows = []
    for workload, stages in data.items():
        for stage, cats in stages.items():
            ranked = sorted(cats.items(), key=lambda kv: -kv[1])[:3]
            rows.append([workload, stage,
                         ", ".join(f"{c} {v:.0%}" for c, v in ranked)])
    print_table("Figure 8: dominant kernel categories per stage (time share)",
                ["workload", "stage", "top categories"], rows)

    # Shares are distributions.
    for stages in data.values():
        for cats in stages.values():
            assert abs(sum(cats.values()) - 1.0) < 1e-9

    # Stage heterogeneity: within apps, stages differ in dominant category.
    hetero = sum(
        1 for stages in data.values()
        if len({max(c, key=c.get) for c in stages.values()}) >= 2
    )
    assert hetero >= 6

    # Modality heterogeneity (MM-IMDB): VGG convs vs ALBERT's conv-free mix.
    info = get_workload("mmimdb")
    profile = MMBenchProfiler("2080ti").profile(info.build(seed=0),
                                                random_batch(info.shapes, 32, seed=0))
    per_modality = defaultdict(lambda: defaultdict(float))
    for kx in profile.report.kernels:
        if kx.event.modality:
            per_modality[kx.event.modality][kx.event.category.value] += kx.duration
    assert per_modality["image"]["Conv"] > 0
    assert per_modality["text"].get("Conv", 0.0) == 0.0
