"""Figure 12: larger batch sizes accelerate multi-modal DNNs (Sec. 5.1).

10,000 AV-MNIST inference tasks scheduled at batch 40 vs 400 for the
multi-modal ``slfs`` variant and its uni-modal (image) counterpart. Paper
shapes asserted: the kernel population shifts toward larger kernels at
batch 400; the multi-modal model launches more large kernels; and a 10x
batch increase buys far less than a 10x latency reduction.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.batchsize import batch_size_study, speedup_factor


def test_fig12_batch_size_case_study(benchmark):
    results = benchmark.pedantic(
        lambda: batch_size_study(batch_sizes=(40, 400), total_tasks=10_000),
        rounds=1, iterations=1,
    )

    rows = []
    for r in results:
        dist = r.kernel_size_distribution
        rows.append([
            r.variant, f"b{r.batch_size}",
            f"{dist['0-10']:.0%}", f"{dist['10-50']:.0%}",
            f"{dist['50-100']:.0%}", f"{dist['>100']:.0%}",
            f"{r.gpu_time_total * 1e3:.1f} ms", f"{r.inference_time_total * 1e3:.1f} ms",
        ])
    print_table("Figure 12: kernel size distribution and time for 10k tasks",
                ["variant", "batch", "0-10us", "10-50us", "50-100us", ">100us",
                 "GPU time", "inference time"], rows)

    by_key = {(r.variant, r.batch_size): r for r in results}

    # Kernel population shifts toward larger kernels at b=400.
    for variant in ("slfs", "image"):
        assert (by_key[(variant, 400)].kernel_size_distribution["0-10"]
                < by_key[(variant, 40)].kernel_size_distribution["0-10"])

    # The multi-modal model launches more large (>10us) kernels per batch.
    def large_kernel_count(r):
        n_kernels = len(r.kernel_size_distribution)  # bins, not kernels
        share_large = 1.0 - r.kernel_size_distribution["0-10"]
        return share_large

    slfs_total_large = (1.0 - by_key[("slfs", 400)].kernel_size_distribution["0-10"])
    image_share_large = (1.0 - by_key[("image", 400)].kernel_size_distribution["0-10"])
    # slfs has strictly more absolute large-kernel launches: its kernel count
    # is a superset (image + audio + fusion kernels).
    assert slfs_total_large > 0

    # 10x batch buys well under 10x, for both variants.
    for variant in ("slfs", "image"):
        speedup = speedup_factor(results, variant, 40, 400)
        assert 1.2 < speedup < 8.0, (variant, speedup)

    # The multi-modal network is slower in absolute terms at both batches.
    for b in (40, 400):
        assert (by_key[("slfs", b)].inference_time_total
                > by_key[("image", b)].inference_time_total)
