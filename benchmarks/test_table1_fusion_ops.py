"""Table 1: the commonly-used fusion operators.

Regenerates the operator catalogue by instantiating and executing each
fusion operator, reporting its parameter count and traced device work.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro import nn
from repro.nn.tensor import Tensor
from repro.trace.tracer import Tracer
from repro.workloads.fusion import FUSION_REGISTRY, make_fusion

MEANINGS = {
    "zero": "discards these features",
    "sum": "sum features",
    "concat": "concat features (ReLU(Concat(x,y)W+b))",
    "tensor": "outer-product-based attention",
    "attention": "attention mechanism",
    "linear_glu": "linear layer with the GLU",
    "transformer": "multi-modal transformer fusion",
    "late_lstm": "late fusion via LSTM",
}


def _run_operator(name: str):
    rng = np.random.default_rng(0)
    fusion = make_fusion(name, [32, 32], 32, rng=rng)
    feats = [Tensor(rng.standard_normal((8, 32)).astype(np.float32)) for _ in range(2)]
    tracer = Tracer()
    with tracer.activate(), nn.no_grad():
        out = fusion(feats)
    trace = tracer.finish()
    return fusion, out, trace


def test_table1_fusion_operator_catalogue(benchmark):
    def run_all():
        rows = []
        for name in sorted(FUSION_REGISTRY):
            fusion, out, trace = _run_operator(name)
            rows.append([
                name, MEANINGS[name], fusion.num_parameters(),
                f"{trace.total_flops:.3g}", len(trace.kernels), str(out.shape),
            ])
        return rows

    rows = benchmark(run_all)
    print_table("Table 1: fusion operators (batch=8, dim=32)",
                ["fusion", "meaning", "params", "flops", "kernels", "output"], rows)
    assert len(rows) == len(FUSION_REGISTRY)
    by_name = {r[0]: r for r in rows}
    assert by_name["zero"][2] == 0  # Zero has no parameters
    # Tensor fusion moves the most intermediate data of the vector fusions.
    assert float(by_name["tensor"][3]) > float(by_name["sum"][3])
