"""Benchmark harness configuration.

Every file regenerates one table or figure of the paper: it runs the
corresponding analysis, prints the same rows/series the paper reports, and
asserts the paper's qualitative claims (who wins, by roughly what factor,
where crossovers fall). Absolute values differ — the substrate is an
analytical simulator plus a single-core numpy DNN framework, not the
authors' 2080Ti testbed — but the *shapes* must hold.

Set ``MMBENCH_FULL=1`` to run the training-based experiments (Figures 4-5)
at full scope (all workloads, bigger budgets) instead of the fast default.
"""

from __future__ import annotations

import os

import pytest


def full_scope() -> bool:
    return os.environ.get("MMBENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def training_budget() -> dict:
    """Training budget for the accuracy experiments."""
    if full_scope():
        return dict(n_train=512, n_test=256, epochs=8)
    return dict(n_train=256, n_test=192, epochs=5)


def print_table(title: str, headers: list[str], rows) -> None:
    from repro.profiling.report import format_table

    print()
    print(format_table(headers, rows, title=title))
