"""Concurrency, serving and robustness analyses; training-trace synthesis;
model serialization."""

import numpy as np
import pytest

from repro import nn
from repro.core.analysis.concurrency import analyze_concurrency, concurrency_study
from repro.core.analysis.robustness import robustness_analysis
from repro.core.analysis.serving import best_batch_for_slo, serving_sweep
from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.training import training_flops_ratio, training_trace
from repro.workloads.registry import get_workload


class TestConcurrency:
    @pytest.fixture(scope="class")
    def push_report(self):
        info = get_workload("mujoco_push")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 64, seed=0)
        return MMBenchProfiler("2080ti").profile(model, batch).report

    def test_geometry(self, push_report):
        c = analyze_concurrency(push_report)
        assert c.straggler == "image"
        assert c.straggler_ratio > 1.3
        assert c.concurrent_encoder_time == pytest.approx(max(c.modality_times.values()))
        assert c.serial_encoder_time == pytest.approx(sum(c.modality_times.values()))
        assert c.concurrency_speedup > 1.0
        assert c.idle_stream_share == pytest.approx(0.75)  # 4 modalities

    def test_idle_fractions_bounded(self, push_report):
        c = analyze_concurrency(push_report)
        assert 0.0 < c.idle_resource_fraction < 1.0
        assert 0.0 < c.idle_window_fraction < 1.0
        # The straggler forces the other streams idle for a large window,
        # the Sec. 4.3.3 phenomenon.
        assert c.idle_window_fraction > 0.3

    def test_unimodal_rejected(self):
        info = get_workload("avmnist")
        model = info.build_unimodal("image", seed=0)
        report = MMBenchProfiler("2080ti").profile(
            model, random_batch(model.shapes, 8, seed=0)).report
        with pytest.raises(ValueError, match="multi-modal"):
            analyze_concurrency(report)

    def test_study_runs_multiple_workloads(self):
        out = concurrency_study(workloads=("avmnist", "mujoco_push"), batch_size=32)
        assert set(out) == {"avmnist", "mujoco_push"}


class TestServing:
    @pytest.fixture(scope="class")
    def sweep(self):
        return serving_sweep(batch_sizes=(1, 40, 400), n_tasks=2_000)

    def test_throughput_grows_with_batch(self, sweep):
        assert sweep[400].throughput > sweep[40].throughput > sweep[1].throughput

    def test_closed_batch_full_utilization(self, sweep):
        for result in sweep.values():
            assert result.server_utilization == pytest.approx(1.0)

    def test_slo_selection(self, sweep):
        never = best_batch_for_slo(sweep, p99_slo=1e-9)
        assert never is None
        always = best_batch_for_slo(sweep, p99_slo=1e9)
        assert always == 400


class TestTrainingTrace:
    @pytest.fixture(scope="class")
    def forward_and_model(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 8, seed=0)
        trace = MMBenchProfiler("2080ti").capture(model, batch)
        return trace, model

    def test_flops_ratio_about_three(self, forward_and_model):
        trace, model = forward_and_model
        ratio = training_flops_ratio(trace, model.parameter_bytes())
        assert 2.8 < ratio < 4.0

    def test_structure_preserved(self, forward_and_model):
        trace, model = forward_and_model
        train = training_trace(trace, model.parameter_bytes())
        assert set(train.stages()) == set(trace.stages())
        assert set(train.modalities()) == set(trace.modalities())
        # Forward + backward + loss + optimizer update.
        assert len(train.kernels) == 2 * len(trace.kernels) + 2

    def test_optimizer_choice_changes_update_cost(self, forward_and_model):
        trace, model = forward_and_model
        adam = training_trace(trace, model.parameter_bytes(), "adam")
        sgd = training_trace(trace, model.parameter_bytes(), "sgd")
        assert adam.total_flops > sgd.total_flops
        with pytest.raises(KeyError, match="unknown optimizer"):
            training_trace(trace, 1.0, "lamb")

    def test_priced_training_step_slower_than_inference(self, forward_and_model):
        trace, model = forward_and_model
        profiler = MMBenchProfiler("2080ti")
        fwd = profiler.price(model, trace, 8)
        train = profiler.price(model, training_trace(trace, model.parameter_bytes()), 8)
        assert train.gpu_time > 2 * fwd.gpu_time


class TestRobustness:
    @pytest.fixture(scope="class")
    def report(self):
        return robustness_analysis(n_train=192, n_test=128, epochs=4)

    def test_clean_metric_reasonable(self, report):
        assert report.clean_metric > 0.5

    def test_dropping_major_modality_hurts_more(self, report):
        assert report.degradation("image") < report.degradation("audio") <= 0.01

    def test_noise_monotonically_degrades(self, report):
        metrics = [report.noise_sweep[s] for s in sorted(report.noise_sweep)]
        assert metrics[0] >= metrics[-1]
        assert report.clean_metric >= metrics[-1]


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        info = get_workload("avmnist")
        a = info.build(seed=0)
        b = info.build(seed=99)
        path = tmp_path / "ckpt.npz"
        nn.save_npz(a, path)
        nn.load_npz(b, path)
        batch = random_batch(info.shapes, 2, seed=0)
        with nn.no_grad():
            np.testing.assert_allclose(a(batch).data, b(batch).data, rtol=1e-6)

    def test_buffers_roundtrip(self, tmp_path):
        info = get_workload("medical_seg")
        a = info.build(seed=0)
        # Mutate a BatchNorm running stat, save, and reload elsewhere.
        batch = random_batch(info.shapes, 2, seed=0)
        a.train()
        a(batch)  # updates running stats
        path = tmp_path / "seg.npz"
        nn.save_npz(a, path)
        b = info.build(seed=1)
        nn.load_npz(b, path)
        np.testing.assert_allclose(
            a.encoders["t1"].enc1.bn.running_mean,
            b.encoders["t1"].enc1.bn.running_mean,
        )

    def test_mismatched_model_fails_loudly(self, tmp_path):
        avmnist = get_workload("avmnist").build(seed=0)
        push = get_workload("mujoco_push").build(seed=0)
        path = tmp_path / "a.npz"
        nn.save_npz(avmnist, path)
        with pytest.raises((KeyError, ValueError)):
            nn.load_npz(push, path)
