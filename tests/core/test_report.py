"""Characterization report generator."""

import pytest

from repro.core.cli import main
from repro.core.report import characterization_report


class TestCharacterizationReport:
    @pytest.fixture(scope="class")
    def text(self):
        return characterization_report("mujoco_push", batch_size=16)

    def test_all_sections_present(self, text):
        for section in ("# MMBench characterization", "## Algorithm level",
                        "## Three-stage profile", "### Kernel mix",
                        "### Modality balance", "### Synchronization split",
                        "### Peak memory", "## Cross-device summary"):
            assert section in text, section

    def test_stages_and_modalities_listed(self, text):
        for token in ("encoder", "fusion", "head", "position", "image"):
            assert token in text

    def test_cross_device_rows(self, text):
        for device in ("2080ti", "orin", "nano"):
            assert device in text

    def test_unimodal_report_skips_modality_section(self):
        text = characterization_report("avmnist", batch_size=8,
                                       devices=("2080ti",))
        # build with default is multimodal; use the fusion arg path instead
        assert "Modality balance" in text

    def test_fusion_choice_reflected(self):
        text = characterization_report("avmnist", fusion="tensor", batch_size=8,
                                       devices=("2080ti",))
        assert "avmnist[tensor]" in text


class TestReportCLI:
    def test_stdout(self, capsys):
        assert main(["report", "--workload", "avmnist", "--batch-size", "8"]) == 0
        assert "# MMBench characterization" in capsys.readouterr().out

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--workload", "avmnist", "--batch-size", "8",
                     "-o", str(target)]) == 0
        assert target.exists()
        assert "Cross-device summary" in target.read_text()
