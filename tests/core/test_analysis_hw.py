"""Hardware-model analyses (Figures 6-15): fast, deterministic checks
that the paper's qualitative findings hold in the reproduction."""

import pytest

from repro.core import analysis


WORKLOADS_FAST = ["avmnist", "mujoco_push", "mmimdb"]


class TestStageAnalysis:
    """Figures 6-7."""

    @pytest.fixture(scope="class")
    def times(self):
        return analysis.stage_time_analysis(workloads=WORKLOADS_FAST, batch_size=16)

    @pytest.fixture(scope="class")
    def resources(self):
        return analysis.stage_resource_analysis(workloads=["avmnist"], batch_size=16)

    def test_three_stages_everywhere(self, times):
        for stages in times.values():
            assert set(stages) == {"encoder", "fusion", "head"}

    def test_encoder_dominates_most_workloads(self, times):
        assert times["avmnist"]["encoder"] > times["avmnist"]["fusion"]
        assert times["mmimdb"]["encoder"] > times["mmimdb"]["fusion"]

    def test_complex_fusion_can_exceed_encoder(self, times):
        """MuJoCo Push's fusion outweighs its encoders (Sec. 4.3.1)."""
        assert times["mujoco_push"]["fusion"] > times["mujoco_push"]["encoder"]

    def test_encoder_richer_resources(self, resources):
        stages = resources["avmnist"]
        for metric in ("dram_utilization", "achieved_occupancy", "ipc"):
            assert stages["encoder"][metric] > stages["fusion"][metric], metric

    def test_load_store_efficiency_flat(self, resources):
        """gld/gst efficiency is roughly stage-independent (Sec. 4.3.1)."""
        stages = resources["avmnist"]
        values = [stages[s]["gld_efficiency"] for s in stages]
        assert max(values) - min(values) < 0.25


class TestHeterogeneity:
    """Figures 8-9."""

    def test_stage_kernel_mixes_differ(self):
        data = analysis.kernel_breakdown_analysis(workloads=["avmnist"], batch_size=16)
        stages = data["avmnist"]
        dominant = {stage: max(cats, key=cats.get) for stage, cats in stages.items()}
        assert len(set(dominant.values())) >= 2

    def test_breakdown_shares_sum_to_one(self):
        data = analysis.kernel_breakdown_analysis(workloads=["mmimdb"], batch_size=16)
        for cats in data["mmimdb"].values():
            assert sum(cats.values()) == pytest.approx(1.0)

    def test_hotspot_varies_across_stages(self):
        records = analysis.hotspot_across_stages(batch_size=16)
        assert len(records) == 3
        ops = {r.context: r.fp32_ops for r in records}
        # Orders-of-magnitude spread between encoder and head hotspots.
        assert ops["encoder"] > 5 * ops["head"]

    def test_tensor_fusion_reads_more_dram(self):
        records = analysis.hotspot_across_fusions(batch_size=16)
        by_fusion = {r.context: r for r in records}
        assert by_fusion["tensor"].dram_read_bytes > 1.5 * by_fusion["concat"].dram_read_bytes
        # ... while staying at a comparable cache-behaviour level (Fig. 9b).
        assert by_fusion["tensor"].l2_hit_rate == pytest.approx(
            by_fusion["concat"].l2_hit_rate, abs=0.3)


class TestSynchronization:
    """Figures 10-11."""

    def test_image_is_straggler(self):
        times = analysis.modality_time_analysis(workloads=("mujoco_push",), batch_size=32)
        push = times["mujoco_push"]
        assert max(push, key=push.get) == "image"
        assert push["image"] > 1.3  # normalized to the fastest modality

    def test_normalization_floor_is_one(self):
        times = analysis.modality_time_analysis(workloads=("avmnist",), batch_size=16)
        assert min(times["avmnist"].values()) == pytest.approx(1.0)

    def test_multi_has_larger_cpu_runtime_share(self):
        rows = analysis.sync_share_analysis(batch_size=32)
        by_key = {(r.workload, r.variant): r for r in rows}
        for workload in ("avmnist", "mujoco_push", "medical_seg", "vision_touch"):
            uni = by_key[(workload, "uni")]
            multi = by_key[(workload, "multi")]
            assert multi.cpu_runtime_share > uni.cpu_runtime_share, workload
            assert uni.cpu_runtime_share + uni.gpu_share == pytest.approx(1.0)


class TestBatchSize:
    """Figures 12-13."""

    @pytest.fixture(scope="class")
    def results(self):
        return analysis.batch_size_study(batch_sizes=(40, 400), total_tasks=10_000)

    def test_larger_batches_use_larger_kernels(self, results):
        by_key = {(r.variant, r.batch_size): r for r in results}
        for variant in ("slfs", "image"):
            small = by_key[(variant, 40)].kernel_size_distribution
            large = by_key[(variant, 400)].kernel_size_distribution
            assert large["0-10"] < small["0-10"]

    def test_10x_batch_far_less_than_10x_speedup(self, results):
        for variant in ("slfs", "image"):
            speedup = analysis.speedup_factor(results, variant, 40, 400)
            assert 1.5 < speedup < 8.0, variant

    def test_multimodal_slower_overall(self, results):
        by_key = {(r.variant, r.batch_size): r for r in results}
        assert (by_key[("slfs", 40)].inference_time_total
                > by_key[("image", 40)].inference_time_total)

    def test_peak_memory_linear_and_multi_heavier(self):
        mem = analysis.peak_memory_study(batch_sizes=(40, 400))
        for variant in ("slfs", "image"):
            m40, m400 = mem[variant][40], mem[variant][400]
            # Model is batch-invariant; dataset and intermediate scale ~10x.
            assert m400.model == pytest.approx(m40.model)
            assert m400.dataset == pytest.approx(10 * m40.dataset, rel=0.01)
            assert m400.intermediate == pytest.approx(10 * m40.intermediate, rel=0.15)
        assert mem["slfs"][400].intermediate > mem["image"][400].intermediate


class TestEdge:
    """Figures 14-15."""

    @pytest.fixture(scope="class")
    def latencies(self):
        return analysis.edge_latency_study()

    @pytest.fixture(scope="class")
    def stalls(self):
        return analysis.edge_stall_study()

    def test_nano_much_slower_than_server(self, latencies):
        by_key = {(r.device, r.variant, r.batch_size): r for r in latencies}
        ratio = (by_key[("nano", "slfs", 40)].inference_time
                 / by_key[("2080ti", "slfs", 40)].inference_time)
        assert ratio > 4.0

    def test_nano_latency_rises_at_b320(self, latencies):
        by_key = {(r.device, r.variant, r.batch_size): r for r in latencies}
        nano = [by_key[("nano", "slfs", b)].inference_time for b in (40, 80, 160, 320)]
        assert nano[3] > nano[2]  # the capacity cliff
        server = [by_key[("2080ti", "slfs", b)].inference_time for b in (40, 80, 160, 320)]
        assert server == sorted(server, reverse=True)  # monotone decrease

    def test_cliff_driven_by_memory_pressure(self, latencies):
        by_key = {(r.device, r.variant, r.batch_size): r for r in latencies}
        assert by_key[("nano", "slfs", 320)].memory_pressure > 0.8
        assert by_key[("nano", "slfs", 160)].memory_pressure < 0.8
        assert by_key[("2080ti", "slfs", 320)].slowdown == 1.0

    def test_stall_mix_shifts(self, stalls):
        assert analysis.dominant_stalls(stalls, "nano")[0] == "Exec"
        assert analysis.dominant_stalls(stalls, "2080ti")[0] in ("Mem", "Cache")

    def test_stage_stall_profiles_present(self, stalls):
        configs = {p.config for p in stalls if p.device == "nano"}
        assert {"uni0", "uni1", "slfs", "encoder", "fusion", "head"} <= configs

    def test_nano_resource_usage(self):
        counters = analysis.edge_resource_study()
        # DRAM utilization stays high across stages on the nano (Fig. 15c).
        for stage, c in counters.items():
            assert c["dram_utilization"] > 0.3, stage
        # Fusion occupancy no longer trails the encoder's on the edge.
        assert (counters["fusion"]["achieved_occupancy"]
                >= counters["encoder"]["achieved_occupancy"] - 1e-6)

    def test_multimodal_ratio_reported_everywhere(self, latencies):
        ratios = analysis.multimodal_ratio(latencies, 40)
        assert set(ratios) == {"nano", "orin", "2080ti"}
        assert all(r > 1.0 for r in ratios.values())
