"""CLI analyze subcommands (beyond stage-time, covered elsewhere)."""

import pytest

from repro.core.cli import main


class TestAnalyzeCommands:
    def test_kernel_breakdown(self, capsys):
        assert main(["analyze", "kernel-breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "avmnist" in out

    def test_batch_size(self, capsys):
        assert main(["analyze", "batch-size"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "slfs" in out

    def test_edge(self, capsys):
        assert main(["analyze", "edge"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "nano" in out

    def test_unknown_analysis_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["analyze", "quantum"])

    def test_run_with_fusion_and_device(self, capsys):
        assert main(["run", "--workload", "mujoco_push", "--fusion", "tensor",
                     "--batch-size", "4", "--device", "orin"]) == 0
        out = capsys.readouterr().out
        assert "mujoco_push[tensor]" in out
        assert "jetson_orin" in out
