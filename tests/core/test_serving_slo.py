"""SLO batch selection and the policy study on the serving subsystem."""

import pytest

from repro.core.analysis.serving import best_batch_for_slo, policy_study
from repro.hw.scheduler import ServingResult


def result(batch_size: int, p99: float) -> ServingResult:
    return ServingResult(
        batch_size=batch_size, n_tasks=100, makespan=1.0, throughput=100.0,
        mean_latency=p99 / 2, p50_latency=p99 / 2, p99_latency=p99,
        server_utilization=1.0,
    )


class TestBestBatchForSLO:
    def test_no_feasible_batch_returns_none(self):
        results = {1: result(1, 0.5), 8: result(8, 0.9)}
        assert best_batch_for_slo(results, p99_slo=0.1) is None

    def test_single_feasible_batch(self):
        results = {1: result(1, 0.05), 8: result(8, 0.9), 40: result(40, 2.0)}
        assert best_batch_for_slo(results, p99_slo=0.1) == 1

    def test_boundary_is_inclusive(self):
        results = {4: result(4, 0.1)}
        assert best_batch_for_slo(results, p99_slo=0.1) == 4

    def test_picks_largest_of_many(self):
        results = {b: result(b, 0.01 * b) for b in (1, 2, 4, 8)}
        assert best_batch_for_slo(results, p99_slo=0.05) == 4

    def test_empty_results(self):
        assert best_batch_for_slo({}, p99_slo=1.0) is None


class TestPolicyStudy:
    def test_same_stream_all_policies(self):
        reports = policy_study(
            workload="avmnist", policies=("fixed", "adaptive"),
            devices=("2080ti",), n_requests=500, arrival_rate=500.0,
            slo=0.05, seed=0,
        )
        assert set(reports) == {"fixed", "adaptive"}
        arrivals = {label: [r.arrival for r in rep.requests[:10]]
                    for label, rep in reports.items()}
        assert arrivals["fixed"] == arrivals["adaptive"]

    def test_rejects_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            policy_study(policies=("belady",), n_requests=10)
