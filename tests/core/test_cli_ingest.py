"""CLI tests for ``mmbench export`` and ``mmbench ingest``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.core.suite import BenchmarkSuite

FIXTURES = Path(__file__).parent.parent / "fixtures" / "execution_graphs"


@pytest.fixture
def exported(tmp_path):
    path = tmp_path / "avmnist.json"
    assert main(["export", "--workload", "avmnist", "--batch-size", "2",
                 "-o", str(path)]) == 0
    return path


class TestExport:
    def test_export_writes_schema_graph(self, exported):
        graph = json.loads(exported.read_text())
        assert graph["schema"] == "mmbench-eg/1"
        assert graph["batch_size"] == 2
        assert graph["nodes"]
        assert graph["model"]["parameter_bytes"] > 0

    def test_export_training_includes_all_passes(self, tmp_path, capsys):
        path = tmp_path / "train.json"
        assert main(["export", "--workload", "avmnist", "--training",
                     "--batch-size", "2", "-o", str(path)]) == 0
        passes = {n.get("pass") for n in json.loads(path.read_text())["nodes"]}
        assert passes == {"forward", "loss", "backward", "optimizer"}

    def test_export_rejects_bad_workload_and_optimizer(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["export", "--workload", "nope", "-o", str(tmp_path / "x.json")])
        assert main(["export", "--workload", "avmnist", "--training",
                     "--optimizer", "nope", "-o", str(tmp_path / "x.json")]) == 2
        assert "unknown optimizer" in capsys.readouterr().err


class TestIngest:
    def test_report_surfaces_unknown_fraction(self, capsys):
        assert main(["ingest", str(FIXTURES / "unknown_ops.json")]) == 0
        out = capsys.readouterr().out
        assert "unknown ops: 2/4 kernels (50.0%)" in out
        assert "my_custom_op" in out
        assert "MMBench profile" in out  # default --report output

    def test_roundtrip_report(self, exported, capsys):
        assert main(["ingest", str(exported), "--report"]) == 0
        out = capsys.readouterr().out
        assert "41 nodes -> 32 kernels + 9 host events" in out
        assert "unknown ops: 0/32 kernels (0.0%)" in out
        assert "MMBench profile" in out

    def test_sweep(self, exported, capsys):
        assert main(["ingest", str(exported), "--sweep", "1,8",
                     "--devices", "2080ti,nano"]) == 0
        out = capsys.readouterr().out
        assert "Ingested batch sweep" in out
        assert "nano" in out

    def test_serve(self, exported, capsys):
        assert main(["ingest", str(exported), "--serve",
                     "--n-requests", "200", "--arrival-rate", "500"]) == 0
        out = capsys.readouterr().out
        assert "Serving policies" in out
        assert "adaptive" in out

    def test_fixture_serves_end_to_end(self, capsys):
        assert main(["ingest", str(FIXTURES / "transformer_train.json"),
                     "--serve", "--n-requests", "100"]) == 0
        out = capsys.readouterr().out
        assert "unknown ops: 1/11" in out
        assert "Serving policies" in out

    def test_op_map_override(self, tmp_path, capsys):
        op_map = tmp_path / "map.json"
        op_map.write_text(json.dumps({"my_custom": "Gemm", "magic": "Gemm"}))
        assert main(["ingest", str(FIXTURES / "unknown_ops.json"),
                     "--op-map", str(op_map)]) == 0
        assert "unknown ops: 0/4 kernels (0.0%)" in capsys.readouterr().out

    def test_warm_cache_still_reports_unknowns(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        for _ in range(2):
            assert main(["ingest", str(FIXTURES / "unknown_ops.json"),
                         "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        # Second run is a disk hit yet still surfaces the unknown bucket.
        assert out.count("unknown ops: 2/4 kernels (50.0%)") == 2
        assert "1 hits (1 disk)" in out


class TestIngestErrors:
    @pytest.mark.parametrize("fixture,fragment", [
        ("cyclic.json", "cycle"),
        ("missing_parent.json", "unknown parent"),
    ])
    def test_malformed_graphs_exit_2(self, fixture, fragment, capsys):
        assert main(["ingest", str(FIXTURES / fixture)]) == 2
        err = capsys.readouterr().err
        assert "ingest failed" in err and fragment in err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["ingest", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_flags_exit_2(self, capsys, exported):
        assert main(["ingest", str(exported), "--sweep", "1,x"]) == 2
        assert main(["ingest", str(exported), "--batch-size", "0"]) == 2
        assert main(["ingest", str(exported), "--op-map", "/nope.json"]) == 2

    def test_bad_device_exits_2(self, capsys, exported):
        assert main(["ingest", str(exported), "--device", "tpu9000"]) == 2


class TestSuiteIngest:
    def test_suite_ingest_profiles_fixture(self):
        suite = BenchmarkSuite("2080ti")
        result = suite.ingest(str(FIXTURES / "cnn_forward.json"))
        assert result.model_name == "cnn_forward"
        assert result.flops == 16896
        assert result.total_time > 0
        assert result.batch_size == 1  # the graph's own batch size

    def test_suite_ingest_batch_override(self):
        suite = BenchmarkSuite("2080ti")
        result = suite.ingest(str(FIXTURES / "cnn_forward.json"), batch_size=4)
        assert result.batch_size == 4
