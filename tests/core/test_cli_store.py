"""``mmbench store`` corpus subcommands: ls, stats, gc, migrate."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.trace.store import (
    TraceStore,
    set_default_store,
    trace_to_payload,
    write_legacy_json,
)

FIXTURES = Path(__file__).parent.parent / "fixtures" / "trace_store"


@pytest.fixture(autouse=True)
def fresh_default_store():
    prev = set_default_store(None)
    yield
    set_default_store(prev)


@pytest.fixture
def seeded(tmp_path):
    """A cache dir with one binary entry and one legacy gzip-JSON entry."""
    store = TraceStore(tmp_path)
    entry = store.get_or_capture("avmnist", batch_size=2, backend="meta")
    legacy_key = store.make_key("avmnist", batch_size=4, backend="meta")
    write_legacy_json(tmp_path / f"{legacy_key.digest()}.json.gz",
                      trace_to_payload(entry, legacy_key))
    return tmp_path


def test_store_requires_cache_dir(monkeypatch, capsys):
    monkeypatch.delenv("MMBENCH_CACHE_DIR", raising=False)
    assert main(["store", "ls"]) == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_store_honors_env_cache_dir(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("MMBENCH_CACHE_DIR", str(tmp_path))
    assert main(["store", "ls"]) == 0
    assert "empty" in capsys.readouterr().out


def test_store_ls_lists_both_formats(seeded, capsys):
    assert main(["store", "ls", "--cache-dir", str(seeded)]) == 0
    out = capsys.readouterr().out
    assert "v5" in out and "json" in out and "avmnist" in out


def test_store_stats_aggregates(seeded, capsys):
    assert main(["store", "stats", "--cache-dir", str(seeded)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out and "1 json" in out and "1 v5" in out
    assert "interned strings" in out


def test_store_migrate_upgrades_legacy(seeded, capsys):
    assert main(["store", "migrate", "--cache-dir", str(seeded)]) == 0
    assert "1 legacy" in capsys.readouterr().out
    assert not list(seeded.glob("*.json.gz"))
    assert len(list(seeded.glob("*.mmt"))) == 2
    # Migrated entries warm-hit: the batch-4 key loads with zero captures.
    cold = TraceStore(seeded)
    cold.get_or_capture("avmnist", batch_size=4, backend="meta")
    assert cold.stats["captures"] == 0 and cold.stats["disk_hits"] == 1


def test_store_gc_removes_stale_and_corrupt(seeded, capsys):
    shutil.copy(FIXTURES / "store_v4.json.gz", seeded / ("a" * 64 + ".json.gz"))
    (seeded / "torn.tmp").write_bytes(b"x")
    assert main(["store", "gc", "--cache-dir", str(seeded)]) == 0
    out = capsys.readouterr().out
    assert "1 stale" in out and "1 torn tmp" in out
    # The live entries survive.
    assert main(["store", "ls", "--cache-dir", str(seeded)]) == 0
    assert "avmnist" in capsys.readouterr().out


def test_store_gc_keep_stale(seeded, capsys):
    shutil.copy(FIXTURES / "store_v4.json.gz", seeded / ("a" * 64 + ".json.gz"))
    assert main(["store", "gc", "--keep-stale", "--cache-dir", str(seeded)]) == 0
    assert "0 stale" in capsys.readouterr().out
    assert (seeded / ("a" * 64 + ".json.gz")).exists()
