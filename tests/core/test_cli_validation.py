"""Eager CLI input validation on run/report/analyze, plus trace options.

PR 1 gave ``mmbench serve`` fail-fast validation (one clean stderr line,
exit code 2, no traceback); this extends the same contract to the other
subcommands and covers the new ``--backend`` / ``--cache-dir`` flags.
"""

import pytest

from repro.core.cli import build_parser, main
from repro.trace.store import default_store, set_default_store


@pytest.fixture(autouse=True)
def fresh_default_store():
    prev = set_default_store(None)
    yield
    set_default_store(prev)


class TestRunValidation:
    def test_unknown_device_fails_cleanly(self, capsys):
        assert main(["run", "--device", "warp9"]) == 2
        err = capsys.readouterr().err
        assert "unknown device" in err and "Traceback" not in err

    def test_unknown_fusion_fails_cleanly(self, capsys):
        assert main(["run", "--workload", "avmnist", "--fusion", "teleport"]) == 2
        err = capsys.readouterr().err
        assert "unknown fusion" in err and "available" in err

    def test_unknown_modality_fails_cleanly(self, capsys):
        assert main(["run", "--workload", "avmnist", "--unimodal", "smell"]) == 2
        assert "unknown modality" in capsys.readouterr().err

    def test_nonpositive_batch_fails_cleanly(self, capsys):
        assert main(["run", "--batch-size", "0"]) == 2
        assert "--batch-size must be positive" in capsys.readouterr().err

    def test_unknown_workload_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestReportValidation:
    def test_unknown_fusion_fails_cleanly(self, capsys):
        assert main(["report", "--workload", "avmnist", "--fusion", "zipper"]) == 2
        assert "unknown fusion" in capsys.readouterr().err

    def test_nonpositive_batch_fails_cleanly(self, capsys):
        assert main(["report", "--batch-size", "-3"]) == 2
        assert "--batch-size must be positive" in capsys.readouterr().err


class TestAnalyzeValidation:
    def test_unknown_device_fails_cleanly(self, capsys):
        assert main(["analyze", "stage-time", "--device", "tpu9000"]) == 2
        err = capsys.readouterr().err
        assert "unknown device" in err and "Traceback" not in err


class TestTraceOptions:
    def test_run_prints_cache_stats(self, capsys):
        assert main(["run", "--workload", "avmnist", "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace store" in out and "1 captures" in out

    def test_serve_prints_cache_stats(self, capsys):
        assert main(["serve", "--n-requests", "50", "--policy", "fixed",
                     "--devices", "2080ti"]) == 0
        assert "trace store" in capsys.readouterr().out

    def test_analyze_stage_time_uses_store(self, capsys):
        assert main(["analyze", "stage-time"]) == 0
        out = capsys.readouterr().out
        assert "9 captures" in out  # one store capture per workload

    def test_run_eager_backend(self, capsys):
        assert main(["run", "--workload", "avmnist", "--batch-size", "2",
                     "--backend", "eager"]) == 0
        assert "MMBench profile" in capsys.readouterr().out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_cache_dir_persists_and_warm_starts(self, tmp_path, capsys):
        cache = tmp_path / "traces"
        assert main(["run", "--workload", "avmnist", "--batch-size", "2",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert list(cache.glob("*.mmt"))
        # A second CLI invocation warm-starts from disk: zero captures.
        set_default_store(None)
        assert main(["run", "--workload", "avmnist", "--batch-size", "2",
                     "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "0 captures" in out and "1 disk" in out

    def test_meta_and_eager_runs_report_identical_times(self, capsys):
        assert main(["run", "--workload", "avmnist", "--batch-size", "2",
                     "--backend", "meta"]) == 0
        meta_out = capsys.readouterr().out
        set_default_store(None)
        assert main(["run", "--workload", "avmnist", "--batch-size", "2",
                     "--backend", "eager"]) == 0
        eager_out = capsys.readouterr().out
        def pick(text):
            return [ln for ln in text.splitlines()
                    if "total" in ln or "GPU" in ln or "flops" in ln]

        assert pick(meta_out) == pick(eager_out)
