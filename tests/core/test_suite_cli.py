"""Benchmark suite front-end and CLI."""

import numpy as np
import pytest

from repro.core.cli import build_parser, main
from repro.core.suite import BenchmarkSuite, RunConfig


@pytest.fixture
def suite():
    return BenchmarkSuite("2080ti")


class TestSuite:
    def test_workload_inventory(self, suite):
        assert len(suite.workloads()) == 9
        assert suite.info("avmnist").domain == "Multimedia"

    def test_run_inference_default(self, suite):
        result = suite.run_inference(RunConfig(workload="avmnist", batch_size=4))
        assert result.batch_size == 4
        assert result.total_time > 0

    def test_run_inference_unimodal(self, suite):
        result = suite.run_inference(RunConfig(workload="avmnist", unimodal="image",
                                               batch_size=2))
        assert result.modalities == ["image"]

    def test_run_inference_fusion_choice(self, suite):
        result = suite.run_inference(RunConfig(workload="avmnist", fusion="tensor",
                                               batch_size=2))
        assert "tensor" in result.model_name

    def test_run_training_step(self, suite):
        loss = suite.run_training_step(RunConfig(workload="avmnist", batch_size=4))
        assert np.isfinite(loss) and loss > 0

    def test_latent_inputs(self, suite):
        config = RunConfig(workload="avmnist", batch_size=4, synthetic_inputs=False)
        batch = suite.make_batch(config)
        assert set(batch) == {"image", "audio"}

    def test_summarize(self, suite):
        result = suite.run_inference(RunConfig(workload="avmnist", batch_size=2))
        assert "[system]" in suite.summarize(result)


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "avmnist" in out and "transfuser" in out

    def test_run_command(self, capsys):
        assert main(["run", "--workload", "avmnist", "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "MMBench profile" in out

    def test_run_on_edge_device(self, capsys):
        assert main(["run", "--workload", "avmnist", "--device", "nano",
                     "--batch-size", "2"]) == 0
        assert "jetson_nano" in capsys.readouterr().out

    def test_parser_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])

    def test_analyze_stage_time(self, capsys):
        assert main(["analyze", "stage-time"]) == 0
        assert "Figure 6" in capsys.readouterr().out
