"""The ``mmbench train-analyze`` subcommand and serve --mix finetune path."""


from repro.core.cli import main


class TestTrainAnalyze:
    def test_default_breakdown(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "Traced training step" in out
        assert "per-stage time by pass" in out
        for pass_name in ("forward", "loss", "backward", "optimizer"):
            assert pass_name in out
        assert "trace store" in out

    def test_cross_check(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--batch-size", "4", "--cross-check"]) == 0
        out = capsys.readouterr().out
        assert "Traced vs synthetic" in out

    def test_sweep(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--sweep", "1,8", "--devices", "2080ti,nano"]) == 0
        out = capsys.readouterr().out
        assert "Training batch-size sweep" in out
        assert "nano" in out

    def test_optimizer_choice(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--batch-size", "2", "--optimizer", "adamw"]) == 0
        assert "adamw" in capsys.readouterr().out

    def test_unknown_optimizer_rejected(self, capsys):
        assert main(["train-analyze", "--optimizer", "lamb"]) == 2
        assert "unknown optimizer" in capsys.readouterr().err

    def test_sweep_rejects_multiple_workloads(self, capsys):
        assert main(["train-analyze", "--workloads", "avmnist,mmimdb",
                     "--sweep", "1,8"]) == 2
        assert "exactly one workload" in capsys.readouterr().err

    def test_bad_batch_size_rejected(self, capsys):
        assert main(["train-analyze", "--batch-size", "0"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_malformed_sweep_rejected(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--sweep", "1,x"]) == 2
        assert "--sweep" in capsys.readouterr().err

    def test_unknown_sweep_device_rejected(self, capsys):
        assert main(["train-analyze", "--workload", "avmnist",
                     "--sweep", "8", "--devices", "nodevice"]) == 2
        assert "unknown device" in capsys.readouterr().err


class TestServeFinetuneMix:
    def test_finetune_mix_reports_jobs(self, capsys):
        assert main(["serve", "--mix", "finetune", "--arrival-rate", "400",
                     "--n-requests", "300", "--workloads", "avmnist,mmimdb",
                     "--devices", "2080ti", "--policy", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "Background fine-tuning jobs" in out
        assert "avmnist:finetune" in out
        assert "inference slowed" in out

    def test_explicit_finetune_workloads_on_other_mix(self, capsys):
        assert main(["serve", "--mix", "uniform", "--arrival-rate", "400",
                     "--n-requests", "200", "--workloads", "avmnist",
                     "--finetune-workloads", "mmimdb",
                     "--finetune-share", "0.2",
                     "--devices", "2080ti", "--policy", "fixed"]) == 0
        out = capsys.readouterr().out
        assert "mmimdb:finetune" in out

    def test_bad_share_rejected(self, capsys):
        assert main(["serve", "--mix", "finetune", "--arrival-rate", "100",
                     "--workloads", "avmnist", "--finetune-share", "1.5",
                     "--policy", "fixed"]) == 2
        assert "--finetune-share" in capsys.readouterr().err

    def test_duplicate_finetune_workloads_rejected(self, capsys):
        assert main(["serve", "--mix", "finetune", "--arrival-rate", "100",
                     "--workloads", "avmnist",
                     "--finetune-workloads", "avmnist,avmnist",
                     "--policy", "fixed"]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_unknown_finetune_workload_rejected(self, capsys):
        assert main(["serve", "--mix", "finetune", "--arrival-rate", "100",
                     "--workloads", "avmnist",
                     "--finetune-workloads", "nonesuch",
                     "--policy", "fixed"]) == 2
        err = capsys.readouterr().err
        assert "nonesuch" in err
