"""Training harness: loss/metric dispatch and correctness masks."""

import numpy as np
import pytest

from repro.core.train import (
    correct_mask,
    evaluate,
    loss_fn_for,
    metric_fn_for,
    train_model,
)
from repro.data.generators import LatentMultimodalDataset
from repro.nn.tensor import Tensor
from repro.workloads.registry import get_workload

TASK_KINDS = ("classification", "multilabel", "regression", "segmentation", "generation")


class TestDispatch:
    @pytest.mark.parametrize("kind", TASK_KINDS)
    def test_loss_and_metric_exist(self, kind):
        assert callable(loss_fn_for(kind))
        metric, higher = metric_fn_for(kind)
        assert callable(metric)
        assert isinstance(higher, bool)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            loss_fn_for("ranking")
        with pytest.raises(ValueError):
            metric_fn_for("ranking")

    def test_regression_metric_lower_is_better(self):
        _, higher = metric_fn_for("regression")
        assert not higher

    def test_generation_loss_reduces_over_positions(self):
        logits = Tensor(np.zeros((2, 3, 5), dtype=np.float32), requires_grad=True)
        loss = loss_fn_for("generation")(logits, np.zeros((2, 3), dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(5), rel=1e-4)


class TestCorrectMask:
    def test_classification(self):
        out = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32))
        mask = correct_mask(out, np.array([0, 0]), "classification")
        np.testing.assert_array_equal(mask, [True, False])

    def test_multilabel_uses_per_sample_f1(self):
        out = Tensor(np.array([[5.0, 5.0], [-5.0, -5.0]], dtype=np.float32))
        targets = np.array([[1, 1], [1, 1]])
        mask = correct_mask(out, targets, "multilabel")
        np.testing.assert_array_equal(mask, [True, False])

    def test_regression_tolerance(self):
        out = Tensor(np.array([[0.1], [2.0]], dtype=np.float32))
        mask = correct_mask(out, np.array([[0.0], [0.0]]), "regression")
        np.testing.assert_array_equal(mask, [True, False])

    def test_segmentation_dice_threshold(self):
        good = np.full((1, 1, 4, 4), 5.0, dtype=np.float32)
        bad = np.full((1, 1, 4, 4), -5.0, dtype=np.float32)
        out = Tensor(np.concatenate([good, bad]))
        targets = np.ones((2, 1, 4, 4), dtype=np.int64)
        mask = correct_mask(out, targets, "segmentation")
        np.testing.assert_array_equal(mask, [True, False])

    def test_generation_requires_all_tokens(self):
        logits = np.zeros((1, 2, 3), dtype=np.float32)
        logits[0, 0, 1] = 5.0
        logits[0, 1, 2] = 5.0
        mask = correct_mask(Tensor(logits), np.array([[1, 2]]), "generation")
        np.testing.assert_array_equal(mask, [True])
        mask = correct_mask(Tensor(logits), np.array([[1, 0]]), "generation")
        np.testing.assert_array_equal(mask, [False])


class TestTrainModel:
    def test_avmnist_learns_above_chance(self):
        info = get_workload("avmnist")
        ds = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=3)
        result = train_model(info.build("concat", seed=0), ds,
                             n_train=128, n_test=96, epochs=3)
        assert result.metric > 0.3  # chance = 0.1
        assert result.higher_is_better
        assert len(result.loss_history) == 3 * 4  # epochs * ceil(128/32)
        assert result.loss_history[-1] < result.loss_history[0]

    def test_unimodal_uses_only_its_stream(self):
        info = get_workload("avmnist")
        ds = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=3)
        result = train_model(info.build_unimodal("audio", seed=0), ds,
                             n_train=64, n_test=32, epochs=1)
        assert result.test_outputs.shape == (32, 10)

    def test_evaluate_batches_large_sets(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        ds = LatentMultimodalDataset(info.shapes, seed=0)
        batch, targets = ds.sample(70, seed=1)
        outputs, metric = evaluate(model, batch, targets, "classification",
                                   eval_batch_size=32)
        assert outputs.shape == (70, 10)
        assert 0.0 <= metric <= 1.0
