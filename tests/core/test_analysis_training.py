"""Training-based analyses (Figures 4-5) at a reduced budget.

These train real models, so budgets are small; the benchmark harness runs
the full-budget versions. The qualitative claims must already hold here:
fusion beats the best single modality on AV-MNIST, and the major modality
covers most of the correctly-processed samples.
"""

import pytest

from repro.core import analysis

BUDGET = dict(n_train=256, n_test=192, epochs=5)


@pytest.fixture(scope="module")
def perf_rows():
    return analysis.performance_analysis(workloads=["avmnist"],
                                         fusions_per_workload=2, **BUDGET)


class TestPerformance:
    def test_row_inventory(self, perf_rows):
        variants = {r.variant for r in perf_rows}
        assert {"image", "audio", "concat", "tensor"} <= variants

    def test_all_above_chance(self, perf_rows):
        for row in perf_rows:
            assert row.value > 0.2, row  # chance = 0.1 on 10 classes

    def test_multimodal_beats_best_unimodal(self, perf_rows):
        best = analysis.best_by_kind(perf_rows, "avmnist")
        assert best["multimodal"].value > best["unimodal"].value

    def test_fusion_spread_nonzero(self, perf_rows):
        assert analysis.fusion_spread(perf_rows, "avmnist") > 0.0

    def test_best_by_kind_unknown_workload(self, perf_rows):
        with pytest.raises(KeyError):
            analysis.best_by_kind(perf_rows, "transfuser")


class TestModalityExclusivity:
    @pytest.fixture(scope="class")
    def sets(self):
        return analysis.exclusive_correct_analysis(workloads=("avmnist",), **BUDGET)

    def test_partition_sums_to_one(self, sets):
        assert sets[0].total == pytest.approx(1.0)

    def test_major_modality_covers_most(self, sets):
        """Paper: >75% of correct samples need only the major modality."""
        assert sets[0].major_fraction > 0.7

    def test_fusion_only_is_small(self, sets):
        """Paper: <5% of correct samples truly require fusion."""
        assert sets[0].fusion_only_fraction < 0.1

    def test_major_is_image(self, sets):
        assert sets[0].major_modality == "image"
