"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. array ``x``.

    Mutates ``x`` in place during probing and restores it. Used by the
    autograd correctness tests.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad
