"""Named traffic scenarios: mix shapes and arrival processes."""

import numpy as np
import pytest

from repro.serving import (
    FixedBatchPolicy,
    SCENARIO_NAMES,
    TenantSpec,
    get_scenario,
    scenario_requests,
)
from repro.serving.scenarios import make_tenants


def tenants(n=3, weights=None):
    return [
        TenantSpec(f"t{i}", lambda k: 1e-4 + 1e-5 * k, FixedBatchPolicy(8),
                   weight=1.0 if weights is None else weights[i])
        for i in range(n)
    ]


def interarrivals(requests):
    arrivals = np.array([r.arrival for r in requests])
    return np.diff(arrivals)


class TestRegistry:
    def test_names(self):
        assert set(SCENARIO_NAMES) == {"uniform", "heavy-head", "diurnal",
                                       "bursty", "finetune"}
        for name in SCENARIO_NAMES:
            assert get_scenario(name).name == name

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("flat")


class TestStreams:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_sorted_tagged_and_deterministic(self, name):
        reqs = scenario_requests(name, tenants(), 2_000, arrival_rate=1_000.0,
                                 seed=3)
        again = scenario_requests(name, tenants(), 2_000, arrival_rate=1_000.0,
                                  seed=3)
        assert len(reqs) == 2_000
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
        assert [r.index for r in reqs] == list(range(2_000))
        assert {r.tenant for r in reqs} <= {"t0", "t1", "t2"}
        assert [(r.arrival, r.tenant) for r in reqs] == [
            (r.arrival, r.tenant) for r in again]

    def test_uniform_closed_batch(self):
        reqs = scenario_requests("uniform", tenants(), 100, arrival_rate=None)
        assert all(r.arrival == 0.0 for r in reqs)

    def test_uniform_respects_weights(self):
        reqs = scenario_requests("uniform", tenants(2, weights=(4.0, 1.0)),
                                 10_000, arrival_rate=1_000.0, seed=0)
        share = sum(1 for r in reqs if r.tenant == "t0") / len(reqs)
        assert 0.75 < share < 0.85

    def test_heavy_head_skews_to_the_first_tenant(self):
        reqs = scenario_requests("heavy-head", tenants(4), 10_000,
                                 arrival_rate=1_000.0, seed=0)
        counts = {f"t{i}": 0 for i in range(4)}
        for r in reqs:
            counts[r.tenant] += 1
        assert counts["t0"] > 2 * counts["t3"]
        assert counts["t0"] > counts["t1"] > counts["t3"]

    def test_diurnal_rate_actually_ramps(self):
        reqs = scenario_requests("diurnal", tenants(), 20_000,
                                 arrival_rate=2_000.0, seed=0)
        arrivals = np.array([r.arrival for r in reqs])
        # Eighth-of-span bins (a quarter cycle each, so peaks and troughs
        # don't cancel); request counts must swing with the sinusoid.
        edges = np.linspace(0.0, arrivals[-1], 9)
        counts = np.histogram(arrivals, bins=edges)[0]
        assert counts.max() > 2.0 * counts.min()

    def test_bursty_is_overdispersed(self):
        reqs = scenario_requests("bursty", tenants(), 20_000,
                                 arrival_rate=2_000.0, seed=0)
        gaps = interarrivals(reqs)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 3.0  # Poisson interarrivals have cv^2 == 1

    def test_mean_rate_roughly_preserved(self):
        for name in ("diurnal", "bursty"):
            reqs = scenario_requests(name, tenants(), 50_000,
                                     arrival_rate=5_000.0, seed=1)
            span = reqs[-1].arrival - reqs[0].arrival
            realized = len(reqs) / span
            assert 0.7 * 5_000.0 < realized < 1.4 * 5_000.0, name


class TestValidation:
    def test_time_varying_scenarios_need_a_rate(self):
        for name in ("diurnal", "bursty"):
            with pytest.raises(ValueError, match="arrival rate"):
                scenario_requests(name, tenants(), 100, arrival_rate=None)

    def test_bad_args(self):
        with pytest.raises(ValueError, match="non-negative"):
            scenario_requests("uniform", tenants(), -1)
        with pytest.raises(ValueError, match="at least one tenant"):
            scenario_requests("uniform", [], 10)
        with pytest.raises(ValueError, match="positive"):
            scenario_requests("uniform", tenants(), 10, arrival_rate=0.0)
        assert scenario_requests("uniform", tenants(), 0) == []


class TestMakeTenants:
    def test_builds_profiled_specs(self):
        specs = make_tenants(("avmnist", "mmimdb"), slo=25e-3)
        assert [s.name for s in specs] == ["avmnist", "mmimdb"]
        assert all(s.slo == 25e-3 for s in specs)
        assert specs[0].cost.latency("2080ti", 4) > 0

    def test_weights_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            make_tenants(("avmnist",), weights=(1.0, 2.0))
