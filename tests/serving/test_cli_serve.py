"""The ``mmbench serve`` subcommand."""

from repro.core.cli import main


class TestServeCommand:
    def test_reports_two_policies_on_two_devices(self, capsys):
        code = main([
            "serve", "--workload", "avmnist", "--arrival-rate", "2000",
            "--n-requests", "400", "--policy", "fixed,adaptive",
            "--devices", "2080ti,nano", "--slo", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Throughput, p50/p99 latency and chosen batch sizes per policy.
        assert "throughput" in out and "p50 latency" in out and "p99 latency" in out
        assert "batch sizes" in out
        assert "fixed(40)" in out and "adaptive(slo=0.05s)" in out
        # Both device models appear in the routing breakdown.
        assert "2080ti" in out and "nano" in out

    def test_closed_batch_default(self, capsys):
        code = main(["serve", "--n-requests", "400", "--policy", "fixed",
                     "--devices", "2080ti"])
        out = capsys.readouterr().out
        assert code == 0
        assert "closed batch" in out

    def test_timeout_policy(self, capsys):
        code = main([
            "serve", "--n-requests", "300", "--arrival-rate", "1000",
            "--policy", "timeout", "--batch-size", "16", "--timeout", "0.002",
            "--devices", "2080ti",
        ])
        assert code == 0
        assert "timeout(16,0.002s)" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self, capsys):
        code = main(["serve", "--policy", "belady"])
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err
