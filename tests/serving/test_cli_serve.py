"""The ``mmbench serve`` subcommand."""

import json

from repro.core.cli import main


class TestServeCommand:
    def test_reports_two_policies_on_two_devices(self, capsys):
        code = main([
            "serve", "--workload", "avmnist", "--arrival-rate", "2000",
            "--n-requests", "400", "--policy", "fixed,adaptive",
            "--devices", "2080ti,nano", "--slo", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Throughput, p50/p99 latency and chosen batch sizes per policy.
        assert "throughput" in out and "p50 latency" in out and "p99 latency" in out
        assert "batch sizes" in out
        assert "fixed(40)" in out and "adaptive(slo=0.05s)" in out
        # Both device models appear in the routing breakdown.
        assert "2080ti" in out and "nano" in out

    def test_closed_batch_default(self, capsys):
        code = main(["serve", "--n-requests", "400", "--policy", "fixed",
                     "--devices", "2080ti"])
        out = capsys.readouterr().out
        assert code == 0
        assert "closed batch" in out

    def test_timeout_policy(self, capsys):
        code = main([
            "serve", "--n-requests", "300", "--arrival-rate", "1000",
            "--policy", "timeout", "--batch-size", "16", "--timeout", "0.002",
            "--devices", "2080ti",
        ])
        assert code == 0
        assert "timeout(16,0.002s)" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self, capsys):
        code = main(["serve", "--policy", "belady"])
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err


class TestServeMixCommand:
    def test_mixed_run_reports_per_tenant(self, capsys):
        code = main([
            "serve", "--mix", "heavy-head", "--arrival-rate", "2000",
            "--n-requests", "600", "--workloads", "avmnist,mmimdb,transfuser",
            "--devices", "2080ti,orin,nano", "--policy", "adaptive",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mix=heavy-head" in out
        assert "Per-tenant latency / SLO breakdown" in out
        for tenant in ("avmnist", "mmimdb", "transfuser"):
            assert tenant in out
        assert "attainment" in out
        # All three device models show up in the routing breakdown.
        assert "orin" in out and "nano" in out

    def test_mix_defaults_to_all_workloads(self, capsys):
        code = main(["serve", "--mix", "uniform", "--arrival-rate", "3000",
                     "--n-requests", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "9 tenants" in out

    def test_unknown_mix_fails_cleanly(self, capsys):
        code = main(["serve", "--mix", "flat"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_time_varying_mix_requires_rate(self, capsys):
        code = main(["serve", "--mix", "bursty", "--n-requests", "100"])
        assert code == 2
        assert "--arrival-rate" in capsys.readouterr().err

    def test_mix_runs_every_listed_policy(self, capsys):
        code = main(["serve", "--mix", "uniform", "--arrival-rate", "2000",
                     "--n-requests", "200", "--workloads", "avmnist",
                     "--policy", "fixed,adaptive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy=fixed" in out and "policy=adaptive" in out
        assert out.count("Per-tenant latency / SLO breakdown") == 2

    def test_mix_rejects_duplicate_workloads_cleanly(self, capsys):
        code = main(["serve", "--mix", "uniform", "--arrival-rate", "100",
                     "--workloads", "avmnist,avmnist"])
        assert code == 2
        assert "duplicate workloads" in capsys.readouterr().err

    def test_workloads_flag_requires_mix(self, capsys):
        code = main(["serve", "--workloads", "avmnist,mmimdb",
                     "--arrival-rate", "100"])
        assert code == 2
        assert "--mix" in capsys.readouterr().err

    def test_mix_rejects_explicit_workload_flag(self, capsys):
        code = main(["serve", "--mix", "uniform", "--arrival-rate", "100",
                     "--workload", "mmimdb"])
        assert code == 2
        assert "--workloads" in capsys.readouterr().err

    def test_mix_rejects_bad_slo_cleanly(self, capsys):
        code = main(["serve", "--mix", "uniform", "--arrival-rate", "100",
                     "--policy", "fixed", "--slo", "-1"])
        assert code == 2
        assert "--slo must be positive" in capsys.readouterr().err


class TestServeFaults:
    def test_chaos_scenario_end_to_end(self, capsys):
        code = main([
            "serve", "--mix", "heavy-head", "--workloads", "avmnist,mmimdb",
            "--faults", "single-failure", "--arrival-rate", "2000",
            "--n-requests", "600", "--policy", "adaptive",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "issued (conserved)" in out
        assert "Per-device fault windows" in out
        assert "Per-tenant shedding / degraded mode" in out

    def test_single_workload_path_takes_faults(self, capsys):
        code = main([
            "serve", "--workload", "avmnist", "--faults", "thermal-brownout",
            "--arrival-rate", "2000", "--n-requests", "400",
            "--policy", "fixed", "--devices", "2080ti,nano",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "issued (conserved)" in out
        assert "throttled" in out

    def test_plan_json_file(self, capsys, tmp_path):
        plan = {"events": [
            {"kind": "down", "device": "nano", "time": 0.01},
            {"kind": "recover", "device": "nano", "time": 0.05},
        ]}
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        code = main([
            "serve", "--workload", "avmnist", "--faults", str(path),
            "--arrival-rate", "2000", "--n-requests", "400",
            "--policy", "fixed", "--devices", "2080ti,nano",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "issued (conserved)" in out

    def test_bogus_faults_value_fails_cleanly(self, capsys):
        code = main(["serve", "--faults", "bogus", "--arrival-rate", "100"])
        assert code == 2
        err = capsys.readouterr().err
        assert "single-failure" in err and "'bogus'" in err

    def test_chaos_scenario_requires_rate(self, capsys):
        code = main(["serve", "--faults", "single-failure",
                     "--n-requests", "100"])
        assert code == 2
        assert "--arrival-rate" in capsys.readouterr().err

    def test_plan_naming_unknown_device_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"events": [
            {"kind": "down", "device": "xeon", "time": 0.01}]}))
        code = main(["serve", "--faults", str(path),
                     "--arrival-rate", "100", "--devices", "2080ti,nano"])
        assert code == 2
        assert "unknown device 'xeon'" in capsys.readouterr().err

    def test_request_deadline_sheds(self, capsys):
        code = main([
            "serve", "--workload", "avmnist", "--request-deadline", "0.004",
            "--arrival-rate", "20000", "--n-requests", "600",
            "--policy", "fixed", "--devices", "nano",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "issued (conserved)" in out

    def test_bad_retry_flags_fail_cleanly(self, capsys):
        code = main(["serve", "--retry-max", "-1", "--arrival-rate", "100"])
        assert code == 2
        assert "--retry-max" in capsys.readouterr().err
        code = main(["serve", "--request-deadline", "0",
                     "--arrival-rate", "100"])
        assert code == 2
        assert "--request-deadline" in capsys.readouterr().err

    def test_degrade_after_rejected_on_single_path(self, capsys):
        code = main(["serve", "--workload", "avmnist", "--degrade-after",
                     "0.1", "--arrival-rate", "100"])
        assert code == 2
        assert "--degrade-after" in capsys.readouterr().err

    def test_empty_devices_component_fails_cleanly(self, capsys):
        code = main(["serve", "--devices", "2080ti,,nano",
                     "--arrival-rate", "100"])
        assert code == 2
        assert "--devices" in capsys.readouterr().err


class TestServeFleetCommand:
    def test_fleet_run_reports_groups_and_conservation(self, capsys):
        code = main([
            "serve", "--fleet", "--groups", "2080ti:4,nano:2",
            "--workloads", "avmnist,mmimdb", "--policy", "adaptive",
            "--n-requests", "2000", "--arrival-rate", "3000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet mix=" in out
        assert "issued (conserved)" in out
        assert "Per-group fleet breakdown" in out
        assert "2080ti" in out and "nano" in out

    def test_fleet_autoscale_flags(self, capsys):
        code = main([
            "serve", "--fleet", "--groups", "2080ti:1:6",
            "--workloads", "transfuser", "--policy", "fixed",
            "--batch-size", "8", "--n-requests", "3000",
            "--arrival-rate", "6000", "--autoscale", "queue:16:0.02:0.04",
            "--autoscale-max", "6",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "autoscaling:" in out

    def test_fleet_chaos_scenario(self, capsys):
        code = main([
            "serve", "--fleet", "--groups", "2080ti:2,nano:2",
            "--workloads", "avmnist", "--policy", "fixed", "--batch-size", "8",
            "--n-requests", "2000", "--arrival-rate", "1500",
            "--faults", "single-failure",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "issued (conserved)" in out

    def test_fleet_requires_groups(self, capsys):
        code = main(["serve", "--fleet", "--workloads", "avmnist",
                     "--n-requests", "100"])
        assert code == 2
        assert "--groups" in capsys.readouterr().err

    def test_fleet_rejects_bad_group_spec(self, capsys):
        code = main(["serve", "--fleet", "--groups", "2080ti",
                     "--workloads", "avmnist", "--n-requests", "100"])
        assert code == 2
        assert "bad group spec" in capsys.readouterr().err

    def test_fleet_rejects_bad_autoscale_spec(self, capsys):
        code = main(["serve", "--fleet", "--groups", "2080ti:2",
                     "--workloads", "avmnist", "--n-requests", "100",
                     "--arrival-rate", "500", "--autoscale", "cpu:10"])
        assert code == 2
        assert "autoscale" in capsys.readouterr().err

    def test_fleet_rejects_stall_scenarios(self, capsys):
        code = main(["serve", "--fleet", "--groups", "2080ti:2,nano:2",
                     "--workloads", "avmnist", "--n-requests", "100",
                     "--arrival-rate", "500", "--faults", "flaky-device"])
        assert code == 2
        assert "stall" in capsys.readouterr().err

    def test_fleet_rejects_round_robin_router(self, capsys):
        code = main(["serve", "--fleet", "--groups", "2080ti:2",
                     "--workloads", "avmnist", "--n-requests", "100",
                     "--router", "round-robin"])
        assert code == 2
        assert "router" in capsys.readouterr().err
