"""Discrete-event serving simulator: dispatch mechanics and accounting."""

import numpy as np
import pytest

from repro.serving import (
    CallableCostModel,
    EarliestFinishRouter,
    FixedBatchPolicy,
    RoundRobinRouter,
    TimeoutBatchPolicy,
    simulate,
)


def affine(k: int) -> float:
    """50us fixed + 10us per task — the roofline model's typical shape."""
    return 50e-6 + 10e-6 * k


class HeteroCost:
    """'fast' serves batches 4x quicker than 'slow'."""

    def latency(self, device: str, batch_size: int) -> float:
        base = affine(batch_size)
        return base if device == "fast" else 4 * base


class TestClosedBatch:
    def test_hand_counted_makespan(self):
        report = simulate(affine, FixedBatchPolicy(10), devices=("d0",),
                          n_requests=100)
        # 10 batches of 10: each 50us + 100us = 150us.
        assert report.makespan == pytest.approx(10 * 150e-6)
        assert report.device_stats["d0"].utilization == pytest.approx(1.0)

    def test_two_identical_devices_halve_makespan(self):
        one = simulate(affine, FixedBatchPolicy(10), devices=("d",), n_requests=100)
        two = simulate(affine, FixedBatchPolicy(10), devices=("d", "d"),
                       n_requests=100)
        assert two.makespan == pytest.approx(one.makespan / 2)
        assert set(two.device_stats) == {"d#0", "d#1"}
        assert all(s.requests == 50 for s in two.device_stats.values())

    def test_callable_wrapped_automatically(self):
        plain = simulate(affine, FixedBatchPolicy(4), devices=("d",), n_requests=16)
        wrapped = simulate(CallableCostModel(affine), FixedBatchPolicy(4),
                           devices=("d",), n_requests=16)
        assert plain.makespan == wrapped.makespan


class TestAccounting:
    def test_fifo_dispatch_order(self):
        report = simulate(affine, FixedBatchPolicy(8), devices=("d",),
                          n_requests=200, arrival_rate=20_000.0, seed=2)
        dispatches = [r.dispatch for r in report.requests]
        assert dispatches == sorted(dispatches)

    def test_latency_decomposition_sums(self):
        report = simulate(affine, TimeoutBatchPolicy(16, 1e-3), devices=("d",),
                          n_requests=300, arrival_rate=5_000.0, seed=0)
        for req in report.requests:
            assert req.latency == pytest.approx(req.queue_time + req.service_time)
            assert 0.0 <= req.formation_wait <= req.queue_time + 1e-12

    def test_fixed_policy_has_no_formation_wait(self):
        report = simulate(affine, FixedBatchPolicy(8), devices=("d",),
                          n_requests=300, arrival_rate=5_000.0, seed=0)
        assert report.mean_formation_wait == 0.0

    def test_timeout_policy_trades_wait_for_batches(self):
        eager = simulate(affine, FixedBatchPolicy(16), devices=("d",),
                         n_requests=500, arrival_rate=5_000.0, seed=1)
        held = simulate(affine, TimeoutBatchPolicy(16, 2e-3), devices=("d",),
                        n_requests=500, arrival_rate=5_000.0, seed=1)
        assert held.mean_formation_wait > 0.0
        assert held.device_stats["d"].mean_batch > eager.device_stats["d"].mean_batch
        assert held.device_stats["d"].batches < eager.device_stats["d"].batches

    def test_percentiles_ordered_and_attainment_monotone(self):
        report = simulate(affine, FixedBatchPolicy(8), devices=("d",),
                          n_requests=400, arrival_rate=10_000.0, seed=3)
        assert report.p50_latency <= report.p95_latency <= report.p99_latency
        assert report.slo_attainment(report.p99_latency) >= 0.99
        assert report.slo_attainment(0.0) == 0.0
        assert report.slo_attainment(np.inf) == 1.0

    def test_batch_histogram_consistent(self):
        report = simulate(affine, FixedBatchPolicy(10), devices=("d",),
                          n_requests=105)
        stats = report.device_stats["d"]
        assert sum(k * n for k, n in stats.batch_histogram.items()) == 105
        assert sum(stats.batch_histogram.values()) == stats.batches
        assert report.batch_sizes_used()["d"] == [5, 10]


class TestRouting:
    def test_earliest_finish_prefers_fast_device(self):
        report = simulate(HeteroCost(), FixedBatchPolicy(8),
                          devices=("fast", "slow"), n_requests=400,
                          arrival_rate=50_000.0, seed=0)
        assert report.device_stats["fast"].requests > 2 * report.device_stats["slow"].requests

    def test_round_robin_spreads_evenly_on_identical_devices(self):
        report = simulate(affine, FixedBatchPolicy(10), devices=("d", "d"),
                          n_requests=200, router=RoundRobinRouter())
        counts = [s.requests for s in report.device_stats.values()]
        assert counts[0] == counts[1] == 100

    def test_hold_on_one_device_still_offers_the_others(self):
        # Round-robin ranks the slow slot first half the time; the adaptive
        # policy holds on it (a guaranteed SLO miss) and must still land
        # the request on the idle fast slot in the same pass.
        from repro.serving import AdaptiveSLOPolicy

        class Lopsided:
            def latency(self, device, k):
                return (1.1e-3 if device == "fast" else 100e-3) + 1e-5 * k

        report = simulate(Lopsided(), AdaptiveSLOPolicy(slo=50e-3),
                          devices=("fast", "slow"), n_requests=200,
                          arrival_rate=200.0, router=RoundRobinRouter(), seed=0)
        assert report.slo_attainment(50e-3) > 0.99
        assert report.device_stats["fast"].requests > report.device_stats["slow"].requests

    def test_round_robin_rotates_per_dispatch_not_per_offer(self):
        router = RoundRobinRouter()
        cost = CallableCostModel(affine)
        # Repeated offers without a dispatch (policy holding) don't skew.
        assert router.rank(["a", "b"], 1, cost) == ["a", "b"]
        assert router.rank(["a", "b"], 1, cost) == ["a", "b"]
        router.note_dispatch("a")
        assert router.rank(["a", "b"], 1, cost) == ["b", "a"]

    def test_router_recorded_in_report(self):
        report = simulate(affine, FixedBatchPolicy(4), devices=("d",),
                          n_requests=8, router=EarliestFinishRouter())
        assert report.router == "earliest-finish"


class _PickyPolicy:
    """Scripted policy: dispatches singles only on one device, records
    every offer the simulator makes."""

    name = "picky"

    def __init__(self, accept):
        self.accept = accept
        self.offers = []

    def decide(self, now, queue_len, oldest_wait, device, cost):
        self.offers.append((now, device))
        return 1 if device == self.accept else None

    def next_wakeup(self, now, oldest_arrival):
        return None


class TestRouterPolicyPaths:
    """The per-device hold loop and router rotation under changing idle
    sets — the interaction paths between `simulate`, policies and routers."""

    def test_round_robin_rotation_under_changing_idle_sets(self):
        router = RoundRobinRouter()
        cost = CallableCostModel(affine)
        assert router.rank(["a", "b", "c"], 1, cost) == ["a", "b", "c"]
        router.note_dispatch("a")
        # Idle set shrank between dispatches: pivot 1 over sorted(["b","c"]).
        assert router.rank(["b", "c"], 1, cost) == ["c", "b"]
        router.note_dispatch("c")
        # All three idle again: pivot 2.
        assert router.rank(["a", "b", "c"], 1, cost) == ["c", "a", "b"]
        router.note_dispatch("b")
        # pivot 3 % 2 == 1 over sorted(["a","c"]).
        assert router.rank(["a", "c"], 1, cost) == ["c", "a"]
        # Offers with no dispatch never advance the rotation.
        assert router.rank(["a", "c"], 1, cost) == ["c", "a"]

    def test_hold_loop_offers_every_idle_slot_in_rank_order(self):
        # The policy holds on "a" (ranked first: label tie-break) and
        # accepts only "b": every batch must land on "b", and each "b"
        # offer must have been preceded by a spurned "a" offer at the
        # same instant — the per-device hold loop at work.
        policy = _PickyPolicy("b")
        report = simulate(affine, policy, devices=("a", "b"), n_requests=3)
        assert report.device_stats["b"].requests == 3
        assert report.device_stats["a"].requests == 0
        b_offers = [i for i, (_, dev) in enumerate(policy.offers) if dev == "b"]
        for i in b_offers:
            assert policy.offers[i - 1][1] == "a"
            assert policy.offers[i - 1][0] == policy.offers[i][0]

    def test_hold_everywhere_with_no_events_raises(self):
        class AlwaysHold:
            name = "never"

            def decide(self, now, queue_len, oldest_wait, device, cost):
                return None

            def next_wakeup(self, now, oldest_arrival):
                return None

        with pytest.raises(RuntimeError, match="held with no pending events"):
            simulate(affine, AlwaysHold(), devices=("d",), n_requests=4)


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = simulate(affine, FixedBatchPolicy(8), devices=("d", "d"),
                     n_requests=300, arrival_rate=8_000.0, seed=7)
        b = simulate(affine, FixedBatchPolicy(8), devices=("d", "d"),
                     n_requests=300, arrival_rate=8_000.0, seed=7)
        assert a.mean_latency == b.mean_latency
        assert a.makespan == b.makespan

    def test_different_seed_different_stream(self):
        a = simulate(affine, FixedBatchPolicy(8), devices=("d",),
                     n_requests=300, arrival_rate=8_000.0, seed=1)
        b = simulate(affine, FixedBatchPolicy(8), devices=("d",),
                     n_requests=300, arrival_rate=8_000.0, seed=2)
        assert a.mean_latency != b.mean_latency


class TestValidation:
    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            simulate(affine, FixedBatchPolicy(4), devices=(), n_requests=10)
        with pytest.raises(ValueError):
            simulate(affine, FixedBatchPolicy(4), devices=("d",), n_requests=-1)
        with pytest.raises(ValueError):
            simulate(affine, FixedBatchPolicy(4), devices=("d",), n_requests=10,
                     arrival_rate=-1.0)
        with pytest.raises(ValueError, match="positive duration"):
            simulate(lambda k: 0.0, FixedBatchPolicy(4), devices=("d",),
                     n_requests=10)


class TestEmptySimulation:
    """n_requests=0 returns a well-formed empty report (the old code
    crashed before ever building one)."""

    @pytest.mark.parametrize("arrival_rate", [None, 100.0])
    def test_empty_report_wellformed(self, arrival_rate):
        report = simulate(affine, FixedBatchPolicy(4), devices=("d0", "d1"),
                          n_requests=0, arrival_rate=arrival_rate)
        assert report.n_requests == 0
        assert report.requests == []
        assert report.makespan == 0.0
        assert report.throughput == 0.0
        assert report.mean_latency == 0.0
        assert report.p99_latency == 0.0
        assert set(report.device_stats) == {"d0", "d1"}
        for stats in report.device_stats.values():
            assert stats.batches == 0 and stats.requests == 0
            assert stats.utilization == 0.0 and stats.mean_batch == 0.0
        assert report.batch_sizes_used() == {"d0": [], "d1": []}
        assert report.total_utilization == 0.0

    def test_empty_slo_attainment_is_vacuous(self):
        report = simulate(affine, FixedBatchPolicy(4), devices=("d",),
                          n_requests=0)
        # No request missed the SLO, so attainment is vacuously 1 (and no
        # ZeroDivisionError).
        assert report.slo_attainment(1e-6) == 1.0
