"""Fault injection: plan validation, aborts/retries, throttles, degradation."""

import json

import pytest

from repro.serving import (
    CHAOS_SCENARIO_NAMES,
    DegradedMode,
    DeviceDown,
    DeviceRecover,
    EarliestFinishRouter,
    FaultPlan,
    FaultPlanError,
    FixedBatchPolicy,
    RetryPolicy,
    RoundRobinRouter,
    TenantSpec,
    ThermalThrottle,
    TransientStall,
    chaos_plan,
    load_fault_plan,
    simulate,
    simulate_mixed,
    slot_labels,
    validate_fault_plan,
)
from repro.serving.faults import FaultRuntime, _jitter_fraction
from repro.serving.finetune import FinetuneJob, _up_windows, finetune_progress


def affine(k: int) -> float:
    return 1e-3 + 1e-4 * k


def run(plan=None, retry=None, devices=("a", "b"), n=400, rate=2_000.0,
        policy=None, seed=0):
    return simulate(affine, policy or FixedBatchPolicy(8), devices=devices,
                    n_requests=n, arrival_rate=rate, seed=seed,
                    faults=plan, retry=retry)


class TestPlanValidation:
    def test_unknown_device_names_offender_and_slots(self):
        plan = FaultPlan((DeviceDown("zzz", 0.1),))
        with pytest.raises(FaultPlanError, match=r"unknown device 'zzz'.*a, b"):
            validate_fault_plan(plan, ("a", "b"))

    def test_overlapping_down_windows(self):
        plan = FaultPlan((DeviceDown("a", 0.1), DeviceDown("a", 0.2),
                          DeviceRecover("a", 0.3)))
        with pytest.raises(FaultPlanError, match="overlapping down windows"):
            validate_fault_plan(plan, ("a", "b"))

    def test_recover_without_down(self):
        plan = FaultPlan((DeviceRecover("a", 0.1),))
        with pytest.raises(FaultPlanError, match="recover without a matching"):
            validate_fault_plan(plan, ("a", "b"))

    def test_plan_killing_every_device_rejected(self):
        plan = FaultPlan((DeviceDown("a", 0.1), DeviceDown("b", 0.1)))
        with pytest.raises(FaultPlanError, match="at least one slot"):
            validate_fault_plan(plan, ("a", "b"))

    def test_event_field_validation(self):
        with pytest.raises(FaultPlanError, match="negative time"):
            FaultPlan((DeviceDown("a", -1.0),))
        with pytest.raises(FaultPlanError, match="factor must be positive"):
            FaultPlan((ThermalThrottle("a", 0.0, 1.0, factor=0.0),))
        with pytest.raises(FaultPlanError, match="end after it starts"):
            FaultPlan((ThermalThrottle("a", 1.0, 0.5, factor=2.0),))
        with pytest.raises(FaultPlanError, match="duration must be positive"):
            FaultPlan((TransientStall("a", 0.0, duration=0.0),))
        with pytest.raises(FaultPlanError, match="not a fault event"):
            FaultPlan(("down",))

    def test_duplicate_slots_expand_by_device_name(self):
        # "d" names both slots of a two-of-the-same pool.
        plan = FaultPlan((DeviceDown("d#0", 0.1), DeviceRecover("d#0", 0.2)))
        validate_fault_plan(plan, ("d", "d"))
        assert list(slot_labels(("d", "d"))) == ["d#0", "d#1"]


class TestJsonRoundTrip:
    def test_round_trip_preserves_events(self):
        plan = FaultPlan((
            DeviceDown("a", 0.1), DeviceRecover("a", 0.2),
            ThermalThrottle("b", 0.0, 0.5, factor=2.5),
            TransientStall("b", 0.3, duration=0.05),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan((DeviceDown("a", 0.1), DeviceRecover("a", 0.2)))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        assert load_fault_plan(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown kind 'explode'"):
            FaultPlan.from_json({"events": [{"kind": "explode", "device": "a",
                                             "time": 0.1}]})


class TestDownRecover:
    def test_outage_aborts_and_retries(self):
        plan = FaultPlan((DeviceDown("a", 0.01), DeviceRecover("a", 0.05)))
        report = run(plan=plan)
        fs = report.fault_stats
        assert fs.completed + fs.shed == fs.issued == 400
        assert fs.devices["a"].downtime == pytest.approx(0.04)
        assert fs.devices["a"].down_windows == [(0.01, 0.05)]
        # Traffic was flowing at t=0.01, so the outage caught a batch.
        assert fs.devices["a"].aborted_batches >= 1
        assert fs.retries >= fs.devices["a"].aborted_requests
        assert sum(k * v for k, v in fs.retry_histogram.items()) == fs.retries
        assert fs.recovery_p99 >= fs.recovery_p50 > 0

    def test_retried_requests_complete_with_latency(self):
        plan = FaultPlan((DeviceDown("a", 0.01), DeviceRecover("a", 0.05)))
        report = run(plan=plan)
        retried = [r for r in report.requests if r.retries and not r.shed]
        assert retried
        for r in retried:
            assert r.latency > 0 and r.finish >= 0.01

    def test_outage_on_idle_pool_costs_nothing(self):
        # The outage window sits long after the last arrival completes.
        plan = FaultPlan((DeviceDown("a", 1e9), DeviceRecover("a", 2e9)))
        base = run()
        faulted = run(plan=plan)
        assert faulted.makespan == base.makespan
        assert faulted.fault_stats.retries == 0

    def test_deadline_sheds_but_conserves(self):
        retry = RetryPolicy(deadline=2e-3)
        report = run(retry=retry, rate=20_000.0, n=1_000, devices=("a",))
        fs = report.fault_stats
        assert fs.shed > 0
        assert fs.completed + fs.shed == fs.issued == 1_000
        assert all(r.shed == (r.tenant == "" and r.finish != r.finish)
                   or True for r in report.requests)  # shed flag consistent
        shed_reqs = [r for r in report.requests if r.shed]
        assert len(shed_reqs) == fs.shed
        assert report.completed == fs.completed
        # Latency stats are over completed requests only.
        assert report.p99_latency == report.p99_latency  # not NaN

    def test_zero_retries_sheds_aborted_requests(self):
        plan = FaultPlan((DeviceDown("a", 0.01), DeviceRecover("a", 0.05)))
        report = run(plan=plan, retry=RetryPolicy(max_retries=0))
        fs = report.fault_stats
        assert fs.shed >= 1
        assert fs.completed + fs.shed == fs.issued


class TestThrottle:
    def test_uniform_factor_scales_service_time(self):
        plan = FaultPlan((ThermalThrottle("a", 0.0, 1e9, factor=2.0),))
        report = run(plan=plan, devices=("a",))
        for r in report.requests:
            assert r.service_time == pytest.approx(2.0 * affine(r.batch_size))
        fs = report.fault_stats
        assert fs.devices["a"].throttle_time == pytest.approx(report.makespan)

    def test_throttle_window_recorded_and_bounded(self):
        plan = FaultPlan((ThermalThrottle("a", 0.01, 0.05, factor=3.0),))
        report = run(plan=plan)
        d = report.fault_stats.devices["a"]
        assert d.throttle_windows == [(0.01, 0.05, 3.0)]
        assert d.throttle_time == pytest.approx(0.04)
        assert report.makespan >= run().makespan

    def test_overlapping_throttles_compound(self):
        plan = FaultPlan((ThermalThrottle("a", 0.0, 1e9, factor=2.0),
                          ThermalThrottle("a", 0.0, 1e9, factor=3.0)))
        report = run(plan=plan, devices=("a",), n=64)
        for r in report.requests:
            assert r.service_time == pytest.approx(6.0 * affine(r.batch_size))


class TestStall:
    def test_stall_delays_and_is_recorded(self):
        base = run(devices=("a",))
        plan = FaultPlan((TransientStall("a", 0.005, duration=0.1),))
        report = run(plan=plan, devices=("a",))
        # The stall happens early and the queue drains before the run
        # ends, so the makespan recovers — but latencies must not.
        assert report.mean_latency > base.mean_latency
        assert report.fault_stats.devices["a"].stall_time == pytest.approx(0.1)
        fs = report.fault_stats
        assert fs.completed == fs.issued and fs.shed == 0


class TestRouterDownSlots:
    def test_rank_excludes_down_slots(self):
        class Cost:
            def latency(self, slot, k):
                return 1e-3

        for router in (EarliestFinishRouter(), RoundRobinRouter()):
            router.note_down("a")
            assert router.rank(["a", "b"], 8, Cost()) == ["b"]
            router.note_recover("a")
            assert set(router.rank(["a", "b"], 8, Cost())) == {"a", "b"}

    def test_note_dispatch_on_down_slot_raises(self):
        for router in (EarliestFinishRouter(), RoundRobinRouter()):
            router.note_down("a")
            with pytest.raises(RuntimeError, match="down slot"):
                router.note_dispatch("a")

    def test_down_slots_frozen_view(self):
        router = EarliestFinishRouter()
        assert router.down_slots == frozenset()
        router.note_down("a")
        assert router.down_slots == frozenset({"a"})

    def test_flap_every_event_plan_still_conserves(self):
        """Regression: rapid down/recover flapping must never resurrect a
        dead slot inside the router or lose a request."""
        events = []
        t = 0.002
        for _ in range(60):
            events.append(DeviceDown("a", t))
            events.append(DeviceRecover("a", t + 0.001))
            t += 0.002
        plan = FaultPlan(tuple(events))
        report = run(plan=plan, retry=RetryPolicy(max_retries=100),
                     rate=5_000.0)
        fs = report.fault_stats
        assert fs.completed + fs.shed == fs.issued == 400
        assert len(fs.devices["a"].down_windows) == 60


class TestChaosBuilders:
    @pytest.mark.parametrize("name", CHAOS_SCENARIO_NAMES)
    def test_builders_produce_valid_plans(self, name):
        devices = ("2080ti", "nano")
        plan = chaos_plan(name, devices, horizon=1.0, seed=3)
        assert not plan.empty
        validate_fault_plan(plan, devices)

    def test_names_cover_issue_scenarios(self):
        assert set(CHAOS_SCENARIO_NAMES) >= {
            "single-failure", "rolling-restart", "thermal-brownout",
            "flaky-device"}

    def test_unknown_scenario_raises(self):
        with pytest.raises(FaultPlanError, match="unknown chaos scenario"):
            chaos_plan("nope", ("a", "b"), horizon=1.0)

    def test_deterministic_in_seed(self):
        a = chaos_plan("flaky-device", ("a", "b"), horizon=1.0, seed=7)
        b = chaos_plan("flaky-device", ("a", "b"), horizon=1.0, seed=7)
        assert a == b

    def test_single_failure_end_to_end(self):
        devices = ("a", "b")
        plan = chaos_plan("single-failure", devices, horizon=0.2, seed=0)
        report = run(plan=plan, devices=devices)
        fs = report.fault_stats
        assert fs.total_downtime > 0
        assert fs.completed + fs.shed == fs.issued


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_exponentially(self):
        retry = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0, jitter=0.0)
        assert retry.backoff(0, 1) == pytest.approx(1e-3)
        assert retry.backoff(0, 2) == pytest.approx(2e-3)
        assert retry.backoff(0, 3) == pytest.approx(4e-3)

    def test_jitter_is_deterministic_and_bounded(self):
        for index in range(50):
            for attempt in range(1, 4):
                f = _jitter_fraction(index, attempt)
                assert 0.0 <= f < 1.0
                assert f == _jitter_fraction(index, attempt)


class TestConservationUnit:
    def test_check_conservation_raises_on_mismatch(self):
        runtime = FaultRuntime(FaultPlan(), RetryPolicy(), ("a",),
                               {"a": "a"})
        runtime.queued = 1
        with pytest.raises(RuntimeError, match="conservation"):
            runtime.check_conservation(issued=0)
        runtime.check_conservation(issued=1)  # balanced again


class TestDegradedMode:
    def test_validation(self):
        with pytest.raises(ValueError, match="latency_factor"):
            DegradedMode("image", 0.0, enter_wait=1.0)
        with pytest.raises(ValueError, match="enter_wait"):
            DegradedMode("image", 0.5, enter_wait=0.0)
        with pytest.raises(ValueError, match="exit_wait"):
            DegradedMode("image", 0.5, enter_wait=1.0, exit_wait=2.0)
        assert DegradedMode("image", 0.5, enter_wait=1.0).exit_wait == 0.5

    def test_pressure_triggers_degraded_serving(self):
        mode = DegradedMode("image", 0.25, enter_wait=5e-3)
        tenants = [TenantSpec("t", affine, FixedBatchPolicy(8), slo=50e-3,
                              degraded=mode)]
        report = simulate_mixed(tenants, devices=("d",), n_requests=3_000,
                                arrival_rate=9_000.0, seed=0)
        fs = report.fault_stats
        t = fs.tenants["t"]
        assert t.degraded_available
        assert t.degraded_requests > 0
        assert t.degraded_activations >= 1
        assert t.degraded_time > 0
        assert t.degraded_slo_attainment is not None
        degraded = [r for r in report.requests if r.degraded]
        assert len(degraded) == t.degraded_requests
        # Degraded batches really run cheaper than their nominal cost.
        for r in degraded:
            assert r.service_time == pytest.approx(0.25 * affine(r.batch_size))

    def test_no_pressure_no_degradation(self):
        mode = DegradedMode("image", 0.25, enter_wait=10.0)
        tenants = [TenantSpec("t", affine, FixedBatchPolicy(8), slo=50e-3,
                              degraded=mode)]
        report = simulate_mixed(tenants, devices=("d",), n_requests=500,
                                arrival_rate=1_000.0, seed=0)
        t = report.fault_stats.tenants["t"]
        assert t.degraded_available and t.degraded_requests == 0


class TestFinetuneCheckpointRestart:
    def test_up_windows_invert_down(self):
        assert _up_windows(1.0, [(0.2, 0.4)]) == [(0.2, True), (0.6, False)]
        assert _up_windows(1.0, []) == [(1.0, False)]
        # Windows past the makespan clamp away.
        assert _up_windows(1.0, [(2.0, 3.0)]) == [(1.0, False)]

    def test_restart_rolls_back_to_checkpoint(self):
        job = FinetuneJob(name="j", workload="avmnist", share=0.5,
                          batch_size=4, checkpoint_interval=10)
        stats_clean = finetune_progress([job], {"s": "2080ti"}, makespan=1.0)
        step = list(stats_clean["j"].step_times.values())[0] / job.share
        # One failure after ~25 partitioned steps: roll back to step 20.
        down = {"s": [(25.0 * step, 30.0 * step)]}
        makespan = 40.0 * step
        stats = finetune_progress([job], {"s": "2080ti"}, makespan=makespan,
                                  down_windows=down)["j"]
        assert stats.restarts == 1
        assert stats.lost_steps == pytest.approx(5.0, abs=1e-6)
        assert stats.downtime == pytest.approx(5.0 * step)
        # 20 checkpointed + 10 after recovery.
        assert stats.steps_completed == pytest.approx(30.0, abs=1e-6)

    def test_no_down_windows_matches_clean_run(self):
        job = FinetuneJob(name="j", workload="avmnist", share=0.25)
        clean = finetune_progress([job], {"s": "2080ti"}, makespan=2.0)
        faulted = finetune_progress([job], {"s": "2080ti"}, makespan=2.0,
                                    down_windows={})
        assert clean["j"].steps_completed == faulted["j"].steps_completed
        assert faulted["j"].restarts == 0 and faulted["j"].lost_steps == 0

    def test_checkpoint_interval_validated(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            FinetuneJob(name="j", workload="avmnist", share=0.1,
                        checkpoint_interval=0)

    def test_mixed_run_wires_down_windows_to_jobs(self):
        tenants = [TenantSpec("t", affine, FixedBatchPolicy(8), slo=50e-3)]
        jobs = [FinetuneJob(name="bg", workload="avmnist", share=0.3,
                            batch_size=4, checkpoint_interval=5)]
        plan = FaultPlan((DeviceDown("2080ti", 0.01),
                          DeviceRecover("2080ti", 0.2)))
        report = simulate_mixed(tenants, devices=("2080ti", "nano"),
                                n_requests=800,
                                arrival_rate=2_000.0, seed=0, finetune=jobs,
                                faults=plan)
        stats = report.finetune_stats["bg"]
        assert stats.restarts >= 1
        assert stats.downtime > 0
