"""Dynamic batching policies: decision rules and SLO adaptation."""

import pytest

from repro.serving import (
    AdaptiveSLOPolicy,
    CallableCostModel,
    FixedBatchPolicy,
    TimeoutBatchPolicy,
    make_policy,
    simulate,
)


def affine(k: int) -> float:
    return 50e-6 + 10e-6 * k


COST = CallableCostModel(affine)


class TestFixed:
    def test_caps_at_batch_size(self):
        policy = FixedBatchPolicy(8)
        assert policy.decide(0.0, 3, 0.0, "d", COST) == 3
        assert policy.decide(0.0, 100, 0.0, "d", COST) == 8

    def test_never_holds(self):
        assert FixedBatchPolicy(8).decide(0.0, 1, 0.0, "d", COST) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedBatchPolicy(0)


class TestTimeout:
    def test_holds_below_batch_and_timeout(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 3, 0.5e-3, "d", COST) is None

    def test_fires_on_full_batch(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 8, 0.0, "d", COST) == 8

    def test_fires_on_timeout_with_partial_batch(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 3, 1e-3, "d", COST) == 3

    def test_wakeup_at_oldest_plus_timeout(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.next_wakeup(0.5, 0.4) == pytest.approx(0.4 + 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutBatchPolicy(0, 1e-3)
        with pytest.raises(ValueError):
            TimeoutBatchPolicy(8, -1.0)


class TestAdaptive:
    def test_batch_cost_stays_within_slo_headroom(self):
        policy = AdaptiveSLOPolicy(slo=1e-3, safety=0.8)
        size = policy.decide(0.0, 10_000, 0.0, "d", COST)
        assert COST.latency("d", size) <= 0.8 * 1e-3
        # And it is the *largest* such batch.
        assert COST.latency("d", size + 1) > 0.8 * 1e-3

    def test_shrinks_headroom_as_oldest_waits(self):
        policy = AdaptiveSLOPolicy(slo=1e-3, safety=1.0)
        fresh = policy.decide(0.0, 10_000, 0.0, "d", COST)
        stale = policy.decide(0.0, 10_000, 0.5e-3, "d", COST)
        assert stale < fresh

    def test_caps_at_queue_depth(self):
        policy = AdaptiveSLOPolicy(slo=1.0)
        assert policy.decide(0.0, 3, 0.0, "d", COST) == 3

    def test_holds_on_device_too_slow_for_slo(self):
        # affine(1) = 60us > the whole 50us budget: a dispatch here is a
        # guaranteed miss, so hold while the budget lasts...
        policy = AdaptiveSLOPolicy(slo=50e-6, safety=1.0)
        assert policy.decide(0.0, 10, 0.0, "d", COST) is None
        assert policy.next_wakeup(0.0, 0.0) >= 50e-6
        # ...and drain once it is spent.
        assert policy.decide(0.0, 10, 60e-6, "d", COST) is not None

    def test_blown_slo_switches_to_drain_mode(self):
        # Oldest already waited past the SLO: dispatch the
        # throughput-optimal batch (the largest, under affine costs).
        policy = AdaptiveSLOPolicy(slo=1e-3, max_batch=512)
        size = policy.decide(0.0, 10_000, 5e-3, "d", COST)
        assert size == 512

    def test_respects_max_batch(self):
        policy = AdaptiveSLOPolicy(slo=10.0, max_batch=64)
        assert policy.decide(0.0, 10_000, 0.0, "d", COST) == 64

    def test_drain_batch_not_shared_across_cost_models(self):
        # Superlinear curves with different throughput optima: one policy
        # instance must compute each cost model's own drain batch.
        cost_a = CallableCostModel(lambda k: 1e-3 + 1e-6 * k * k)  # optimum ~32
        cost_b = CallableCostModel(lambda k: 1e-3 + 1e-8 * k * k)  # optimum ~256
        policy = AdaptiveSLOPolicy(slo=1e-6, max_batch=512)  # always drain mode
        assert policy.decide(0.0, 10_000, 1.0, "d", cost_a) == 32
        assert policy.decide(0.0, 10_000, 1.0, "d", cost_b) == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(0.0)
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(1.0, max_batch=0)
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(1.0, safety=1.5)


class TestEndToEndSLO:
    def test_adaptive_sustains_overload_that_fixed_cannot(self):
        """The acceptance scenario in miniature: one device, same stream."""
        rate = 1.5 / affine(1)  # 1.5x the no-batching capacity
        slo = 20e-3
        fixed = simulate(affine, FixedBatchPolicy(1), devices=("d",),
                         n_requests=2_000, arrival_rate=rate, seed=0)
        adaptive = simulate(affine, AdaptiveSLOPolicy(slo), devices=("d",),
                            n_requests=2_000, arrival_rate=rate, seed=0)
        assert fixed.p99_latency > slo
        assert adaptive.p99_latency <= slo
        assert adaptive.slo_attainment(slo) > 0.99 > fixed.slo_attainment(slo)


class TestFactory:
    def test_names(self):
        assert make_policy("fixed", batch_size=4).batch_size == 4
        assert make_policy("timeout", timeout=1e-3).timeout == 1e-3
        assert make_policy("adaptive", slo=0.1).slo == 0.1
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("lru")
