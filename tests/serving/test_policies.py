"""Dynamic batching policies: decision rules and SLO adaptation."""

import math

import pytest

from repro.serving import (
    AdaptiveSLOPolicy,
    CallableCostModel,
    FixedBatchPolicy,
    PROFILE_STATS,
    ProfiledCostModel,
    TimeoutBatchPolicy,
    make_policy,
    simulate,
)
from repro.serving.policies import _wake_after
from repro.serving.simulator import _SlotCost


def affine(k: int) -> float:
    return 50e-6 + 10e-6 * k


COST = CallableCostModel(affine)


class TestFixed:
    def test_caps_at_batch_size(self):
        policy = FixedBatchPolicy(8)
        assert policy.decide(0.0, 3, 0.0, "d", COST) == 3
        assert policy.decide(0.0, 100, 0.0, "d", COST) == 8

    def test_never_holds(self):
        assert FixedBatchPolicy(8).decide(0.0, 1, 0.0, "d", COST) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedBatchPolicy(0)


class TestTimeout:
    def test_holds_below_batch_and_timeout(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 3, 0.5e-3, "d", COST) is None

    def test_fires_on_full_batch(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 8, 0.0, "d", COST) == 8

    def test_fires_on_timeout_with_partial_batch(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.decide(0.0, 3, 1e-3, "d", COST) == 3

    def test_wakeup_at_oldest_plus_timeout(self):
        policy = TimeoutBatchPolicy(8, 1e-3)
        assert policy.next_wakeup(0.5, 0.4) == pytest.approx(0.4 + 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutBatchPolicy(0, 1e-3)
        with pytest.raises(ValueError):
            TimeoutBatchPolicy(8, -1.0)


class TestAdaptive:
    def test_batch_cost_stays_within_slo_headroom(self):
        policy = AdaptiveSLOPolicy(slo=1e-3, safety=0.8)
        size = policy.decide(0.0, 10_000, 0.0, "d", COST)
        assert COST.latency("d", size) <= 0.8 * 1e-3
        # And it is the *largest* such batch.
        assert COST.latency("d", size + 1) > 0.8 * 1e-3

    def test_shrinks_headroom_as_oldest_waits(self):
        policy = AdaptiveSLOPolicy(slo=1e-3, safety=1.0)
        fresh = policy.decide(0.0, 10_000, 0.0, "d", COST)
        stale = policy.decide(0.0, 10_000, 0.5e-3, "d", COST)
        assert stale < fresh

    def test_caps_at_queue_depth(self):
        policy = AdaptiveSLOPolicy(slo=1.0)
        assert policy.decide(0.0, 3, 0.0, "d", COST) == 3

    def test_holds_on_device_too_slow_for_slo(self):
        # affine(1) = 60us > the whole 50us budget: a dispatch here is a
        # guaranteed miss, so hold while the budget lasts...
        policy = AdaptiveSLOPolicy(slo=50e-6, safety=1.0)
        assert policy.decide(0.0, 10, 0.0, "d", COST) is None
        assert policy.next_wakeup(0.0, 0.0) >= 50e-6
        # ...and drain once it is spent.
        assert policy.decide(0.0, 10, 60e-6, "d", COST) is not None

    def test_blown_slo_switches_to_drain_mode(self):
        # Oldest already waited past the SLO: dispatch the
        # throughput-optimal batch (the largest, under affine costs).
        policy = AdaptiveSLOPolicy(slo=1e-3, max_batch=512)
        size = policy.decide(0.0, 10_000, 5e-3, "d", COST)
        assert size == 512

    def test_respects_max_batch(self):
        policy = AdaptiveSLOPolicy(slo=10.0, max_batch=64)
        assert policy.decide(0.0, 10_000, 0.0, "d", COST) == 64

    def test_drain_batch_not_shared_across_cost_models(self):
        # Superlinear curves with different throughput optima: one policy
        # instance must compute each cost model's own drain batch.
        cost_a = CallableCostModel(lambda k: 1e-3 + 1e-6 * k * k)  # optimum ~32
        cost_b = CallableCostModel(lambda k: 1e-3 + 1e-8 * k * k)  # optimum ~256
        policy = AdaptiveSLOPolicy(slo=1e-6, max_batch=512)  # always drain mode
        assert policy.decide(0.0, 10_000, 1.0, "d", cost_a) == 32
        assert policy.decide(0.0, 10_000, 1.0, "d", cost_b) == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(0.0)
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(1.0, max_batch=0)
        with pytest.raises(ValueError):
            AdaptiveSLOPolicy(1.0, safety=1.5)


class TestWakeAfter:
    """The float-rounding livelock guard behind every policy wakeup."""

    def test_wakeup_survives_its_own_comparison(self):
        # Wake times must satisfy `wake - base >= delta` — the comparison
        # `decide` makes at the wakeup — even where `base + delta` rounds
        # down. Sweep magnitudes where the rounding actually bites.
        bases = [0.1, 0.3, 1.0, 3.0, 1e3, 1e6, 12345.6789, 2**40 + 0.5]
        deltas = [1e-3, 2e-3, 1e-6, 0.1, 1.0 / 3.0, 5e-9]
        for base in bases:
            for delta in deltas:
                wake = _wake_after(base, delta)
                assert wake - base >= delta, (base, delta)
                # And it is the tightest such float: either the plain sum
                # already satisfied the invariant, or stepping one ulp back
                # lands on an iterate that failed it.
                assert (wake == base + delta
                        or math.nextafter(wake, -math.inf) - base < delta)

    def test_plain_sum_would_livelock(self):
        # A concrete pair where naive `base + delta` fails the comparison,
        # demonstrating why the guard exists.
        base, delta = 1.0, 1e-3
        assert (base + delta) - base < delta
        assert _wake_after(base, delta) - base >= delta

    def test_timeout_policy_simulation_never_livelocks(self):
        # Pathological (base, delta) pairs occur naturally under Poisson
        # arrivals; the run completing at all is the livelock regression.
        report = simulate(affine, TimeoutBatchPolicy(64, 1e-3), devices=("d",),
                          n_requests=2_000, arrival_rate=3_000.0, seed=11)
        assert report.n_requests == 2_000


class TestDrainMemo:
    """The drain-batch memo must key on the underlying cost model, not on
    the per-run slot wrapper the simulator hands to ``decide``."""

    class CountingCost:
        def __init__(self):
            self.calls = 0

        def latency(self, device, k):
            self.calls += 1
            return 1e-3 + 1e-6 * k * k

    def test_memo_survives_new_slot_wrappers(self):
        cost = self.CountingCost()
        policy = AdaptiveSLOPolicy(slo=1e-6, max_batch=512)  # always drains
        # Two simulations build two distinct wrappers over the same model.
        first = _SlotCost(cost, {"slot": "dev"})
        policy.decide(0.0, 1_000, 1.0, "slot", first)
        probes = cost.calls
        assert probes > 2  # the ladder search ran once
        second = _SlotCost(cost, {"slot": "dev"})
        policy.decide(0.0, 1_000, 1.0, "slot", second)
        # Only decide's own headroom probe (latency at k=1) runs again;
        # the ladder search is a memo hit despite the fresh wrapper.
        assert cost.calls == probes + 1

    def test_memo_keys_on_device_not_slot_label(self):
        cost = self.CountingCost()
        policy = AdaptiveSLOPolicy(slo=1e-6, max_batch=512)
        policy.decide(0.0, 1_000, 1.0, "dev#0", _SlotCost(cost, {"dev#0": "dev"}))
        probes = cost.calls
        # A different slot label over the same device model: still a memo
        # hit (only the per-decide headroom probe runs).
        policy.decide(0.0, 1_000, 1.0, "dev#3", _SlotCost(cost, {"dev#3": "dev"}))
        assert cost.calls == probes + 1

    def test_distinct_models_keep_distinct_optima(self):
        policy = AdaptiveSLOPolicy(slo=1e-6, max_batch=512)
        cost_a = CallableCostModel(lambda k: 1e-3 + 1e-6 * k * k)  # optimum ~32
        cost_b = CallableCostModel(lambda k: 1e-3 + 1e-8 * k * k)  # optimum ~256
        a = policy.decide(0.0, 10_000, 1.0, "d", _SlotCost(cost_a, {}))
        b = policy.decide(0.0, 10_000, 1.0, "d", _SlotCost(cost_b, {}))
        assert (a, b) == (32, 256)

    def test_profiled_stats_flat_across_simulations(self):
        # End-to-end: repeated drain-heavy simulations over one profiled
        # model do no extra captures/pricings once the curves are warm.
        cost = ProfiledCostModel("avmnist", anchors=(1, 8, 32))
        policy = AdaptiveSLOPolicy(slo=1e-4, max_batch=64)
        simulate(cost, policy, devices=("2080ti",), n_requests=200,
                 arrival_rate=50_000.0, seed=0)
        before = dict(PROFILE_STATS)
        simulate(cost, policy, devices=("2080ti",), n_requests=200,
                 arrival_rate=50_000.0, seed=1)
        assert dict(PROFILE_STATS) == before


class TestEndToEndSLO:
    def test_adaptive_sustains_overload_that_fixed_cannot(self):
        """The acceptance scenario in miniature: one device, same stream."""
        rate = 1.5 / affine(1)  # 1.5x the no-batching capacity
        slo = 20e-3
        fixed = simulate(affine, FixedBatchPolicy(1), devices=("d",),
                         n_requests=2_000, arrival_rate=rate, seed=0)
        adaptive = simulate(affine, AdaptiveSLOPolicy(slo), devices=("d",),
                            n_requests=2_000, arrival_rate=rate, seed=0)
        assert fixed.p99_latency > slo
        assert adaptive.p99_latency <= slo
        assert adaptive.slo_attainment(slo) > 0.99 > fixed.slo_attainment(slo)


class TestFactory:
    def test_names(self):
        assert make_policy("fixed", batch_size=4).batch_size == 4
        assert make_policy("timeout", timeout=1e-3).timeout == 1e-3
        assert make_policy("adaptive", slo=0.1).slo == 0.1
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("lru")
