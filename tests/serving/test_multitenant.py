"""Multi-tenant concurrent serving: per-tenant queues, costs and SLOs."""

import pytest

from repro.serving import (
    AdaptiveSLOPolicy,
    FixedBatchPolicy,
    RoundRobinRouter,
    TenantSpec,
    make_requests,
    poisson_arrivals,
    simulate,
    simulate_mixed,
)
from repro.serving.request import Request


def fast(k: int) -> float:
    return 40e-6 + 8e-6 * k


def slow(k: int) -> float:
    return 200e-6 + 40e-6 * k


def two_tenants(policy_a=None, policy_b=None):
    return [
        TenantSpec("a", fast, policy_a or FixedBatchPolicy(8), slo=10e-3),
        TenantSpec("b", slow, policy_b or FixedBatchPolicy(8), slo=50e-3),
    ]


class TestMixedDispatch:
    def test_no_cross_tenant_batching(self):
        """Every request's service time matches *its own* tenant's cost at
        its batch size — impossible if batches mixed tenants."""
        report = simulate_mixed(two_tenants(), devices=("d",),
                                n_requests=2_000, arrival_rate=20_000.0, seed=0)
        cost = {"a": fast, "b": slow}
        for req in report.requests:
            assert req.service_time == pytest.approx(cost[req.tenant](req.batch_size))

    def test_tenant_tags_preserved_and_partitioned(self):
        report = simulate_mixed(two_tenants(), devices=("d", "d"),
                                n_requests=3_000, arrival_rate=30_000.0, seed=1)
        by_tag = {"a": 0, "b": 0}
        for req in report.requests:
            by_tag[req.tenant] += 1
        assert by_tag["a"] == report.tenant_stats["a"].n_requests
        assert by_tag["b"] == report.tenant_stats["b"].n_requests
        assert sum(by_tag.values()) == report.n_requests

    def test_single_tenant_mixed_equals_plain_simulate(self):
        """One tenant through the mixed path is bit-identical to simulate."""
        policy = FixedBatchPolicy(8)
        arrivals = poisson_arrivals(1_000, 10_000.0, seed=5)
        plain = simulate(fast, FixedBatchPolicy(8), devices=("d0", "d1"),
                         n_requests=1_000, arrival_rate=10_000.0, seed=5)
        mixed = simulate_mixed(
            [TenantSpec("t", fast, policy)], devices=("d0", "d1"),
            requests=make_requests(arrivals, tenant="t"),
            arrival_rate=10_000.0, seed=5)
        assert mixed.makespan == plain.makespan
        assert mixed.mean_latency == plain.mean_latency
        assert mixed.p99_latency == plain.p99_latency
        for slot in plain.device_stats:
            assert (mixed.device_stats[slot].batch_histogram
                    == plain.device_stats[slot].batch_histogram)

    def test_replaying_one_stream_leaves_prior_reports_intact(self):
        from repro.serving import scenario_requests

        tenants = two_tenants()
        stream = scenario_requests("uniform", tenants, 500,
                                   arrival_rate=100_000.0, seed=4)
        one = simulate_mixed(tenants, devices=("d",), requests=stream)
        first_latencies = [r.latency for r in one.requests]
        # Replaying the identical list on a different pool must not
        # clobber the first report's request timings.
        two = simulate_mixed(tenants, devices=("d", "d"), requests=stream)
        assert [r.latency for r in one.requests] == first_latencies
        assert two.makespan < one.makespan  # the saturated pool doubled

    def test_weights_shape_the_uniform_mix(self):
        tenants = [TenantSpec("a", fast, FixedBatchPolicy(8), weight=3.0),
                   TenantSpec("b", fast, FixedBatchPolicy(8), weight=1.0)]
        report = simulate_mixed(tenants, devices=("d",), n_requests=8_000,
                                arrival_rate=20_000.0, seed=0)
        share = report.tenant_stats["a"].n_requests / report.n_requests
        assert 0.70 < share < 0.80  # ~3/4 in expectation

    def test_fifo_within_each_tenant(self):
        report = simulate_mixed(two_tenants(), devices=("d",),
                                n_requests=2_000, arrival_rate=15_000.0, seed=2)
        for tenant in ("a", "b"):
            dispatches = [r.dispatch for r in report.requests if r.tenant == tenant]
            assert dispatches == sorted(dispatches)


class TestTenantStats:
    def test_per_tenant_slo_attainment(self):
        # Tenant "b" gets an SLO its slow cost model cannot possibly meet.
        tenants = [TenantSpec("a", fast, FixedBatchPolicy(8), slo=50e-3),
                   TenantSpec("b", slow, FixedBatchPolicy(8), slo=1e-6)]
        report = simulate_mixed(tenants, devices=("d",), n_requests=2_000,
                                arrival_rate=10_000.0, seed=0)
        assert report.tenant_stats["a"].slo_attainment == pytest.approx(1.0)
        assert report.tenant_stats["b"].slo_attainment == 0.0

    def test_no_slo_means_no_attainment(self):
        tenants = [TenantSpec("a", fast, FixedBatchPolicy(8), slo=None)]
        report = simulate_mixed(tenants, devices=("d",), n_requests=500,
                                arrival_rate=5_000.0)
        assert report.tenant_stats["a"].slo_attainment is None
        assert report.tenant_stats["a"].slo is None

    def test_percentiles_ordered_per_tenant(self):
        report = simulate_mixed(two_tenants(), devices=("d",),
                                n_requests=4_000, arrival_rate=20_000.0, seed=3)
        for stats in report.tenant_stats.values():
            assert stats.p50_latency <= stats.p95_latency <= stats.p99_latency
            assert stats.mean_queue_time >= 0.0

    def test_throughputs_sum_to_total(self):
        report = simulate_mixed(two_tenants(), devices=("d", "d"),
                                n_requests=2_000, arrival_rate=20_000.0, seed=0)
        total = sum(s.throughput for s in report.tenant_stats.values())
        assert total == pytest.approx(report.throughput)

    def test_adaptive_tenant_protects_its_own_slo(self):
        """Each tenant's adaptive policy plans against its *own* curve."""
        tenants = [
            TenantSpec("a", fast, AdaptiveSLOPolicy(5e-3), slo=5e-3),
            TenantSpec("b", slow, AdaptiveSLOPolicy(50e-3), slo=50e-3),
        ]
        report = simulate_mixed(tenants, devices=("d", "d"), n_requests=4_000,
                                arrival_rate=30_000.0, seed=0)
        assert report.tenant_stats["a"].slo_attainment > 0.99
        assert report.tenant_stats["b"].slo_attainment > 0.99


class TestMixedValidation:
    def test_bad_args_raise(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            simulate_mixed([], devices=("d",))
        with pytest.raises(ValueError, match="duplicate"):
            simulate_mixed([TenantSpec("a", fast, FixedBatchPolicy(1)),
                            TenantSpec("a", fast, FixedBatchPolicy(1))])
        with pytest.raises(ValueError, match="at least one device"):
            simulate_mixed(two_tenants(), devices=())
        with pytest.raises(ValueError, match="unknown tenants"):
            simulate_mixed(two_tenants(), devices=("d",),
                           requests=[Request(index=0, arrival=0.0, tenant="ghost")])
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("a", fast, FixedBatchPolicy(1), weight=0.0)
        with pytest.raises(ValueError, match="slo"):
            TenantSpec("a", fast, FixedBatchPolicy(1), slo=-1.0)

    def test_unsorted_requests_are_resorted(self):
        requests = [Request(index=0, arrival=1.0, tenant="a"),
                    Request(index=1, arrival=0.5, tenant="a")]
        report = simulate_mixed([TenantSpec("a", fast, FixedBatchPolicy(1))],
                                devices=("d",), requests=requests)
        assert [r.arrival for r in report.requests] == [0.5, 1.0]
        dispatches = [r.dispatch for r in report.requests]
        assert dispatches == sorted(dispatches)

    def test_empty_mixed_run(self):
        report = simulate_mixed(two_tenants(), devices=("d",), n_requests=0,
                                arrival_rate=100.0)
        assert report.n_requests == 0
        assert report.tenant_stats["a"].n_requests == 0
        assert report.tenant_stats["a"].slo_attainment == 1.0  # vacuous
        assert report.slo_attainment(1e-9) == 1.0

    def test_determinism(self):
        a = simulate_mixed(two_tenants(), devices=("d", "d"), n_requests=2_000,
                           arrival_rate=20_000.0, scenario="bursty", seed=7)
        b = simulate_mixed(two_tenants(), devices=("d", "d"), n_requests=2_000,
                           arrival_rate=20_000.0, scenario="bursty", seed=7)
        assert a.mean_latency == b.mean_latency
        assert a.makespan == b.makespan

    def test_round_robin_router_supported(self):
        report = simulate_mixed(two_tenants(), devices=("d", "d"),
                                n_requests=1_000, arrival_rate=10_000.0,
                                router=RoundRobinRouter(), seed=0)
        assert report.router == "round-robin"
        assert report.n_requests == 1_000
