"""Fleet simulator: classic-parity differential, autoscaling, faults, hops.

The tier-1 anchor is the differential suite: with autoscaling off, no
faults and no hop costs, :func:`simulate_fleet` on homogeneous device
groups must reproduce the classic per-slot simulator (earliest-finish
router, same devices) to 1e-9 — completions, latency percentiles,
per-tenant SLO attainment, the lot. The fleet loop visits a subset of
the classic loop's event times but makes identical dispatch decisions
at identical instants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    AdaptiveSLOPolicy,
    AutoscalePolicy,
    DeviceGroup,
    EarliestFinishRouter,
    FixedBatchPolicy,
    FleetConfigError,
    TenantSpec,
    TimeoutBatchPolicy,
    chaos_plan,
    make_tenants,
    parse_autoscale,
    parse_groups,
    scenario_columns,
    simulate_fleet,
    simulate_mixed,
)
from repro.serving.faults import (
    DeviceDown,
    DeviceRecover,
    FaultPlan,
    ThermalThrottle,
    TransientStall,
)

REPORT_ATTRS = (
    "makespan", "mean_latency", "p50_latency", "p95_latency", "p99_latency",
    "mean_queue_time", "mean_formation_wait", "mean_service_time",
)
TENANT_ATTRS = (
    "n_requests", "mean_latency", "p50_latency", "p95_latency", "p99_latency",
    "mean_queue_time", "throughput",
)


class DeviceAwareCost:
    """Analytic affine cost with a per-device speed grade."""

    BASE = {"2080ti": 1.0, "orin": 1.7, "nano": 3.0}

    def __init__(self, scale: float = 1.0):
        self.scale = scale

    def latency(self, device: str, batch_size: int) -> float:
        return self.scale * self.BASE[device] * (0.004 + 0.001 * batch_size)


def analytic_tenants(policy_factory):
    return [
        TenantSpec(name=f"t{i}", cost=DeviceAwareCost(scale),
                   policy=policy_factory(), slo=0.05, weight=w)
        for i, (scale, w) in enumerate([(1.0, 3.0), (1.4, 1.0)])
    ]


def assert_matches_classic(tenants_fleet, tenants_classic, groups, devices,
                           n_requests, arrival_rate, seed, scenario="uniform"):
    fleet = simulate_fleet(tenants_fleet, groups, n_requests=n_requests,
                           arrival_rate=arrival_rate, scenario=scenario,
                           seed=seed)
    classic = simulate_mixed(tenants_classic, devices=devices,
                             n_requests=n_requests, arrival_rate=arrival_rate,
                             scenario=scenario, seed=seed,
                             router=EarliestFinishRouter())
    assert fleet.n_requests == classic.n_requests
    for attr in REPORT_ATTRS:
        assert getattr(fleet, attr) == pytest.approx(
            getattr(classic, attr), abs=1e-9, rel=1e-9), attr
    for name, ref in classic.tenant_stats.items():
        got = fleet.tenant_stats[name]
        for attr in TENANT_ATTRS:
            assert float(getattr(got, attr)) == pytest.approx(
                float(getattr(ref, attr)), abs=1e-9, rel=1e-9), (name, attr)
        if ref.slo_attainment is not None:
            assert got.slo_attainment == pytest.approx(
                ref.slo_attainment, abs=1e-9), name
    return fleet, classic


# -- tier-1 differential: fleet == classic --------------------------------------------------------


@pytest.mark.parametrize("policy_factory", [
    lambda: FixedBatchPolicy(7),
    lambda: TimeoutBatchPolicy(8, 0.004),
    lambda: AdaptiveSLOPolicy(0.05),
], ids=["fixed", "timeout", "adaptive"])
def test_differential_analytic_costs(policy_factory):
    assert_matches_classic(
        analytic_tenants(policy_factory), analytic_tenants(policy_factory),
        groups=(DeviceGroup("2080ti", 2), DeviceGroup("nano", 1)),
        devices=("2080ti", "2080ti", "nano"),
        n_requests=5_000, arrival_rate=900.0, seed=3)


def test_differential_profiled_costs():
    assert_matches_classic(
        make_tenants(["avmnist", "mmimdb"], slo=50e-3),
        make_tenants(["avmnist", "mmimdb"], slo=50e-3),
        groups=(DeviceGroup("2080ti", 2), DeviceGroup("orin", 1)),
        devices=("2080ti", "2080ti", "orin"),
        n_requests=4_000, arrival_rate=1_500.0, seed=1)


def test_differential_closed_arrivals():
    assert_matches_classic(
        make_tenants(["avmnist", "mmimdb"], slo=50e-3),
        make_tenants(["avmnist", "mmimdb"], slo=50e-3),
        groups=(DeviceGroup("2080ti", 2), DeviceGroup("orin", 1)),
        devices=("2080ti", "2080ti", "orin"),
        n_requests=2_000, arrival_rate=None, seed=0)


def test_differential_heavy_head_scenario():
    assert_matches_classic(
        analytic_tenants(lambda: AdaptiveSLOPolicy(0.05)),
        analytic_tenants(lambda: AdaptiveSLOPolicy(0.05)),
        groups=(DeviceGroup("2080ti", 3), DeviceGroup("nano", 2)),
        devices=("2080ti",) * 3 + ("nano",) * 2,
        n_requests=6_000, arrival_rate=1_100.0, seed=7,
        scenario="heavy-head")


# -- config parsing and validation ----------------------------------------------------------------


def test_parse_groups():
    groups = parse_groups("2080ti:64,orin:32,nano:16:24")
    assert [(g.device, g.replicas, g.capacity) for g in groups] == [
        ("2080ti", 64, 64), ("orin", 32, 32), ("nano", 16, 24)]


@pytest.mark.parametrize("spec", ["", "2080ti", "2080ti:0", "2080ti:x",
                                  "2080ti:4:2", "2080ti:4:4:4"])
def test_parse_groups_rejects(spec):
    with pytest.raises((FleetConfigError, ValueError)):
        parse_groups(spec)


def test_parse_autoscale():
    scale = parse_autoscale("queue:64:0.1:0.5", min_replicas=2, max_replicas=8)
    assert (scale.metric, scale.threshold, scale.interval, scale.cooldown,
            scale.min_replicas, scale.max_replicas) == ("queue", 64.0, 0.1, 0.5, 2, 8)
    with pytest.raises((FleetConfigError, ValueError)):
        parse_autoscale("cpu:64")


def test_duplicate_group_devices_rejected():
    with pytest.raises(FleetConfigError, match="duplicate"):
        simulate_fleet(analytic_tenants(lambda: FixedBatchPolicy(4)),
                       (DeviceGroup("2080ti", 2), DeviceGroup("2080ti", 1)),
                       n_requests=10, arrival_rate=100.0)


def test_stall_fault_plans_rejected():
    plan = FaultPlan(events=(TransientStall(time=0.1, device="2080ti",
                                            duration=0.05),))
    with pytest.raises(FleetConfigError, match="stall"):
        simulate_fleet(analytic_tenants(lambda: FixedBatchPolicy(4)),
                       (DeviceGroup("2080ti", 2),),
                       n_requests=100, arrival_rate=100.0, faults=plan)


def test_columns_tenant_mismatch_rejected():
    tenants = analytic_tenants(lambda: FixedBatchPolicy(4))
    other = make_tenants(["avmnist", "mmimdb"], slo=50e-3)
    columns = scenario_columns("uniform", other, 100, arrival_rate=100.0)
    with pytest.raises(ValueError, match="tagged for tenants"):
        simulate_fleet(tenants, (DeviceGroup("2080ti", 2),), columns=columns,
                       arrival_rate=100.0)


def test_unsorted_columns_rejected():
    tenants = analytic_tenants(lambda: FixedBatchPolicy(4))
    columns = scenario_columns("uniform", tenants, 100, arrival_rate=100.0)
    shuffled = type(columns)(
        arrivals=columns.arrivals[::-1].copy(), codes=columns.codes,
        tenants=columns.tenants)
    with pytest.raises(ValueError, match="sorted"):
        simulate_fleet(tenants, (DeviceGroup("2080ti", 2),), columns=shuffled,
                       arrival_rate=100.0)


def test_empty_stream():
    report = simulate_fleet(analytic_tenants(lambda: FixedBatchPolicy(4)),
                            (DeviceGroup("2080ti", 2),), n_requests=0,
                            arrival_rate=100.0)
    assert report.n_requests == 0
    assert report.makespan == 0.0
    assert report.slo_attainment(0.05) == 1.0


# -- autoscaling edge cases ------------------------------------------------------------------------


def overloaded(n=20_000, rate=2_000.0, **kwargs):
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    return simulate_fleet(tenants, (DeviceGroup("2080ti", 1, pool=8),),
                          n_requests=n, arrival_rate=rate, seed=0, **kwargs)


def test_autoscale_scale_out_under_queue_pressure():
    report = overloaded(autoscale=AutoscalePolicy(threshold=20.0))
    assert report.completed == report.n_requests
    out = [e for e in report.scaling_events if e.after > e.before]
    assert out, "sustained overload never scaled out"
    stats = report.group_stats["2080ti"]
    assert stats.peak_replicas > 1
    assert all(1 <= e.after <= 8 for e in report.scaling_events)


def test_autoscale_scale_in_drains_never_aborts():
    # A lightly-loaded fleet: the queue repeatedly empties between
    # arrivals, so idle groups scale back in. Scale-in must *drain*
    # in-flight batches — every request still completes.
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    report = simulate_fleet(
        tenants, (DeviceGroup("2080ti", 4, pool=4), DeviceGroup("nano", 4, pool=4)),
        n_requests=10_000, arrival_rate=400.0, seed=0,
        autoscale=AutoscalePolicy(threshold=1e6, interval=0.02,
                                  cooldown=0.04, idle_fraction=0.5))
    assert report.completed == report.n_requests
    scale_in = [e for e in report.scaling_events if e.after < e.before]
    assert scale_in, "idle fleet never scaled back in"
    assert any(s.replicas < s.peak_replicas
               for s in report.group_stats.values())


def test_autoscale_cooldown_suppresses_thrash():
    fast = overloaded(autoscale=AutoscalePolicy(
        threshold=20.0, interval=0.02, cooldown=0.0))
    slow = overloaded(autoscale=AutoscalePolicy(
        threshold=20.0, interval=0.02, cooldown=0.4))
    assert slow.completed == fast.completed == 20_000
    fast_times = [e.time for e in fast.scaling_events]
    slow_times = [e.time for e in slow.scaling_events]
    assert slow_times, "cooldown suppressed scaling entirely"
    # Without a cooldown, back-to-back ticks act; with one, consecutive
    # actions on the (single) group are >= cooldown apart.
    assert any(b - a < 0.4 for a, b in zip(fast_times, fast_times[1:]))
    assert all(b - a >= 0.4 - 1e-12
               for a, b in zip(slow_times, slow_times[1:]))


def test_autoscale_respects_min_replicas_floor_under_faults():
    # The group goes down mid-run; while it is down the autoscaler must
    # not touch it, and scale-in can never cut below min_replicas.
    plan = FaultPlan(events=(DeviceDown(time=0.5, device="2080ti"),
                             DeviceRecover(time=1.5, device="2080ti")))
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    report = simulate_fleet(
        tenants, (DeviceGroup("2080ti", 4, pool=8), DeviceGroup("nano", 2, pool=4)),
        n_requests=10_000, arrival_rate=800.0, seed=0, faults=plan,
        autoscale=AutoscalePolicy(threshold=10.0, interval=0.02,
                                  cooldown=0.04, min_replicas=2,
                                  idle_fraction=0.25))
    assert report.completed == report.n_requests
    assert all(e.after >= 2 for e in report.scaling_events)
    down_window = [e for e in report.scaling_events
                   if e.group == "2080ti" and 0.5 <= e.time < 1.5]
    assert not down_window, "autoscaler acted on a downed group"


def test_autoscale_p99_metric():
    report = overloaded(autoscale=AutoscalePolicy(metric="p99", threshold=0.2))
    assert report.completed == report.n_requests
    assert any("p99" in e.reason for e in report.scaling_events
               if e.after > e.before)


def test_autoscale_policy_validation():
    with pytest.raises(ValueError):
        AutoscalePolicy(metric="cpu")
    with pytest.raises(ValueError):
        AutoscalePolicy(threshold=0.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_replicas=4, max_replicas=2)
    with pytest.raises(ValueError):
        AutoscalePolicy(idle_fraction=0.0)


# -- faults and hop costs --------------------------------------------------------------------------


def test_group_down_reroutes_and_conserves():
    plan = chaos_plan("single-failure", ("2080ti", "nano"), 4.0, seed=0)
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    report = simulate_fleet(tenants,
                            (DeviceGroup("2080ti", 2), DeviceGroup("nano", 2)),
                            n_requests=8_000, arrival_rate=1_800.0, seed=0,
                            faults=plan)
    assert report.completed == 8_000
    assert all(s.requests > 0 for s in report.group_stats.values())


def test_group_throttle_stretches_latency():
    plan = FaultPlan(events=(ThermalThrottle(device="2080ti", time=0.0,
                                             until=100.0, factor=3.0),))
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    throttled = simulate_fleet(tenants, (DeviceGroup("2080ti", 2),),
                               n_requests=4_000, arrival_rate=700.0, seed=0,
                               faults=plan)
    clean = simulate_fleet(analytic_tenants(lambda: FixedBatchPolicy(8)),
                           (DeviceGroup("2080ti", 2),),
                           n_requests=4_000, arrival_rate=700.0, seed=0)
    assert throttled.completed == clean.completed == 4_000
    assert throttled.mean_service_time > clean.mean_service_time * 1.5


def test_hop_costs_charged_on_group_moves():
    tenants = analytic_tenants(lambda: FixedBatchPolicy(8))
    report = simulate_fleet(tenants,
                            (DeviceGroup("2080ti", 2), DeviceGroup("nano", 2)),
                            n_requests=8_000, arrival_rate=1_800.0, seed=0,
                            hop_bytes=1e6)
    hops = sum(s.hop_batches for s in report.group_stats.values())
    hop_time = sum(s.hop_time for s in report.group_stats.values())
    assert report.completed == 8_000
    assert hops > 0
    assert hop_time > 0.0

    free = simulate_fleet(analytic_tenants(lambda: FixedBatchPolicy(8)),
                          (DeviceGroup("2080ti", 2), DeviceGroup("nano", 2)),
                          n_requests=8_000, arrival_rate=1_800.0, seed=0)
    assert report.mean_latency > free.mean_latency


# -- report surface --------------------------------------------------------------------------------


def test_fleet_summary_renders():
    from repro.serving import fleet_summary

    report = overloaded(autoscale=AutoscalePolicy(threshold=20.0))
    text = fleet_summary(report)
    assert "issued (conserved)" in text
    assert "Per-group fleet breakdown" in text
    assert "autoscaling:" in text
