"""Fine-tuning tenants: stream shares, inference slowdown, job progress."""

import pytest

from repro.serving import (
    FinetuneJob,
    TenantSpec,
    inference_slowdown,
    make_finetune_jobs,
    simulate_mixed,
    total_background_share,
)
from repro.serving.finetune import TrainingCostModel, finetune_progress
from repro.serving.policies import FixedBatchPolicy


def affine_tenant(name="t0", base=1e-3, per=1e-4):
    return TenantSpec(name=name, cost=lambda k: base + per * k,
                      policy=FixedBatchPolicy(8), slo=50e-3)


class TestJobSpecs:
    def test_share_bounds(self):
        with pytest.raises(ValueError, match="share"):
            FinetuneJob(name="j", workload="avmnist", share=0.0)
        with pytest.raises(ValueError, match="share"):
            FinetuneJob(name="j", workload="avmnist", share=1.0)

    def test_oversubscription_rejected(self):
        jobs = [FinetuneJob(name=f"j{i}", workload="avmnist", share=0.5)
                for i in range(2)]
        with pytest.raises(ValueError, match="no room for inference"):
            total_background_share(jobs)

    def test_duplicate_names_rejected(self):
        jobs = [FinetuneJob(name="j", workload="avmnist", share=0.1)] * 2
        with pytest.raises(ValueError, match="duplicate"):
            total_background_share(jobs)

    def test_slowdown_is_partition_reciprocal(self):
        jobs = [FinetuneJob(name="j", workload="avmnist", share=0.25)]
        assert inference_slowdown(jobs) == pytest.approx(1.0 / 0.75)
        assert inference_slowdown([]) == 1.0

    def test_make_jobs_split_share(self):
        jobs = make_finetune_jobs(["avmnist", "mmimdb"], share=0.3)
        assert [j.share for j in jobs] == [0.15, 0.15]
        assert jobs[0].name == "avmnist:finetune"
        assert make_finetune_jobs([]) == []


class TestTrainingCostModel:
    def test_step_time_positive_and_memoized(self):
        job = FinetuneJob(name="j", workload="avmnist", share=0.2, batch_size=4)
        cost = TrainingCostModel(job)
        t = cost.step_time("2080ti")
        assert t > 0
        assert cost.step_time("2080ti") == t  # memo
        # An edge board prices the same traced step slower.
        assert cost.step_time("nano") > t


class TestSimulateMixedWithFinetune:
    def test_inference_slows_and_jobs_progress(self):
        tenants = [affine_tenant()]
        jobs = [FinetuneJob(name="bg", workload="avmnist", share=0.25,
                            batch_size=4)]
        clean = simulate_mixed(tenants, devices=("2080ti",), n_requests=400,
                               scenario="finetune", seed=3)
        shared = simulate_mixed(tenants, devices=("2080ti",), n_requests=400,
                                scenario="finetune", finetune=jobs, seed=3)
        assert shared.inference_slowdown == pytest.approx(1.0 / 0.75)
        assert shared.makespan > clean.makespan
        stats = shared.finetune_stats["bg"]
        assert stats.steps_completed > 0
        assert stats.samples_processed == pytest.approx(
            stats.steps_completed * 4)
        assert stats.makespan == pytest.approx(shared.makespan)

    def test_progress_scales_with_share(self):
        tenants = [affine_tenant()]

        def run(share):
            jobs = [FinetuneJob(name="bg", workload="avmnist", share=share,
                                batch_size=4)]
            return simulate_mixed(tenants, devices=("2080ti",), n_requests=200,
                                  finetune=jobs, seed=1).finetune_stats["bg"]

        small, large = run(0.1), run(0.4)
        # A larger share both trains faster per wall-second and stretches
        # the inference makespan; steps/second is the clean comparison.
        assert large.steps_per_second > small.steps_per_second

    def test_pure_inference_report_unchanged(self):
        report = simulate_mixed([affine_tenant()], devices=("2080ti",),
                                n_requests=100, seed=0)
        assert report.finetune_stats == {}
        assert report.inference_slowdown == 1.0

    def test_progress_spans_all_slots(self):
        jobs = [FinetuneJob(name="bg", workload="avmnist", share=0.2,
                            batch_size=2)]
        report = simulate_mixed([affine_tenant()], devices=("2080ti", "nano"),
                                n_requests=200, finetune=jobs, seed=0)
        stats = report.finetune_stats["bg"]
        assert set(stats.per_slot_steps) == {"2080ti", "nano"}
        assert stats.per_slot_steps["2080ti"] > stats.per_slot_steps["nano"]


class TestFinetuneProgressDirect:
    def test_partitioned_step_arithmetic(self):
        job = FinetuneJob(name="j", workload="avmnist", share=0.5, batch_size=4)
        cost = TrainingCostModel(job)
        native = cost.step_time("2080ti")
        out = finetune_progress([job], {"2080ti": "2080ti"}, makespan=1.0)
        # share 0.5 doubles the step time on the partition.
        assert out["j"].per_slot_steps["2080ti"] == pytest.approx(
            1.0 / (native / 0.5))

    def test_empty_jobs(self):
        assert finetune_progress([], {"2080ti": "2080ti"}, 1.0) == {}
