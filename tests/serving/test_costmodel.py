"""Profiled cost models: interpolation, extrapolation and memoization."""

import pytest

from repro.profiling.profiler import MMBenchProfiler
from repro.serving import (
    PROFILE_STATS,
    CallableCostModel,
    ProfiledCostModel,
    clear_cost_cache,
)
from repro.serving.costmodel import anchored_batch_time
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cost_cache()
    yield
    clear_cost_cache()


def snapshot() -> dict:
    return dict(PROFILE_STATS)


class TestMemoization:
    def test_same_key_never_reprofiles(self):
        cost = ProfiledCostModel("avmnist", anchors=(1, 4, 16))
        cost.latency("2080ti", 8)
        before = snapshot()
        # Same (workload, fusion, batch size, device) again — cache only.
        cost.latency("2080ti", 8)
        cost.latency("2080ti", 12)  # different batch, same anchors
        assert snapshot()["captures"] == before["captures"]
        assert snapshot()["pricings"] == before["pricings"]

    def test_fresh_instance_shares_module_cache(self):
        ProfiledCostModel("avmnist", anchors=(1, 4, 16)).latency("2080ti", 8)
        before = snapshot()
        other = ProfiledCostModel("avmnist", anchors=(1, 4, 16))
        other.latency("2080ti", 8)
        after = snapshot()
        assert after["captures"] == before["captures"]
        assert after["pricings"] == before["pricings"]
        assert after["hits"] > before["hits"]

    def test_new_device_reprices_but_does_not_recapture(self):
        cost = ProfiledCostModel("avmnist", anchors=(1, 4, 16))
        cost.latency("2080ti", 8)
        before = snapshot()
        cost.latency("nano", 8)  # traces are device-independent
        after = snapshot()
        assert after["captures"] == before["captures"]
        assert after["pricings"] == before["pricings"] + 3  # one per anchor

    def test_default_fusion_aliases_none(self):
        from repro.workloads.registry import get_workload

        default = get_workload("avmnist").default_fusion
        ProfiledCostModel("avmnist", None, anchors=(1, 4)).latency("2080ti", 2)
        before = snapshot()
        ProfiledCostModel("avmnist", default, anchors=(1, 4)).latency("2080ti", 2)
        assert snapshot()["captures"] == before["captures"]
        assert snapshot()["pricings"] == before["pricings"]

    def test_device_aliases_share_cache(self):
        cost = ProfiledCostModel("avmnist", anchors=(1, 4, 16))
        cost.latency("2080ti", 8)
        before = snapshot()
        cost.latency("rtx2080ti", 8)  # canonical name of the same device
        assert snapshot()["pricings"] == before["pricings"]


class TestCurve:
    @pytest.fixture(scope="class")
    def cost(self):
        return ProfiledCostModel("avmnist", anchors=(1, 8, 32, 128))

    def test_monotone_in_batch_size(self, cost):
        times = [cost.latency("2080ti", k) for k in (1, 8, 24, 64, 128)]
        assert times == sorted(times)

    def test_amortization(self, cost):
        assert cost.latency("2080ti", 128) / 128 < cost.latency("2080ti", 1)

    def test_extrapolates_beyond_last_anchor(self, cost):
        inside = cost.latency("2080ti", 128)
        beyond = cost.latency("2080ti", 512)
        far = cost.latency("2080ti", 2048)
        assert inside < beyond < far  # affine growth, not np.interp clamping

    def test_extrapolates_below_first_anchor(self):
        # Non-default anchors starting above 1: small batches must ride the
        # first segment's slope down, not flat-clamp at the k=8 price.
        cost = ProfiledCostModel("avmnist", anchors=(8, 32, 128))
        t8 = cost.latency("2080ti", 8)
        t32 = cost.latency("2080ti", 32)
        slope = (t32 - t8) / (32 - 8)
        for k in (1, 2, 4, 7):
            priced = cost.latency("2080ti", k)
            assert priced < t8  # the old code returned t8 for all of these
            assert priced == pytest.approx(t8 - slope * (8 - k))
            assert priced > 0

    def test_below_anchor_extrapolation_floors_positive(self):
        import numpy as np

        from repro.serving.costmodel import _interp_affine

        # Superlinear anchor pair: the affine extrapolation would cross
        # zero at small k; the floor keeps pricing proportional instead.
        anchors = np.array([8.0, 32.0])
        times = np.array([1.0, 10.0])  # slope 0.375 -> affine at k=1: -1.625
        priced = _interp_affine(1, anchors, times)
        assert priced == pytest.approx(1.0 * 1 / 8)
        # The normal (positive-intercept) case is untouched by the floor.
        gentle = np.array([1.0, 1.24])  # slope 0.01/k
        assert _interp_affine(4, anchors, gentle) == pytest.approx(
            1.0 - (0.24 / 24) * 4)

    def test_edge_slower_than_server(self, cost):
        assert cost.latency("nano", 32) > cost.latency("2080ti", 32)

    def test_throughput_optimal_batch(self, cost):
        best = cost.throughput_optimal_batch("2080ti", max_batch=128)
        rate = best / cost.latency("2080ti", best)
        assert rate >= 1 / cost.latency("2080ti", 1)

    def test_validation(self, cost):
        with pytest.raises(ValueError):
            cost.latency("2080ti", 0)
        with pytest.raises(ValueError):
            ProfiledCostModel("avmnist", anchors=())
        with pytest.raises(ValueError):
            ProfiledCostModel("avmnist", anchors=(8, 1))
        with pytest.raises(ValueError):
            # Floats that collapse into duplicate ints after truncation.
            ProfiledCostModel("avmnist", anchors=(1.2, 1.8))


class TestAnchoredBatchTime:
    def test_memoized_per_model_and_device(self):
        model = get_workload("avmnist").build(seed=0)
        profiler = MMBenchProfiler("2080ti")
        anchored_batch_time(profiler, model, "2080ti", anchors=(1, 4))
        before = snapshot()
        anchored_batch_time(profiler, model, "2080ti", anchors=(1, 4))
        after = snapshot()
        assert after["captures"] == before["captures"]
        assert after["hits"] == before["hits"] + 1


class TestCallable:
    def test_delegates_and_validates(self):
        cost = CallableCostModel(lambda k: 1e-3 * k)
        assert cost.latency("anything", 2) == pytest.approx(2e-3)
        with pytest.raises(ValueError):
            cost.latency("anything", 0)
        with pytest.raises(ValueError, match="positive duration"):
            CallableCostModel(lambda k: -1.0).latency("d", 1)
