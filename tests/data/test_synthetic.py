"""The dataset-free random-input abstraction."""

import numpy as np
import pytest

from repro.data.shapes import ALL_SHAPES, AVMNIST
from repro.data.synthetic import (
    batch_bytes,
    random_batch,
    random_modality_batch,
    random_targets,
)


class TestRandomBatch:
    @pytest.mark.parametrize("name", sorted(ALL_SHAPES))
    def test_shapes_and_dtypes(self, name):
        shapes = ALL_SHAPES[name]
        batch = random_batch(shapes, 4, seed=0)
        assert set(batch) == set(shapes.modality_names)
        for spec in shapes.modalities:
            arr = batch[spec.name]
            assert arr.shape == (4, *spec.shape)
            if spec.kind.value == "tokens":
                assert arr.dtype == np.int64
                assert arr.min() >= 0 and arr.max() < spec.vocab_size
            else:
                assert arr.dtype == np.float32

    def test_deterministic_by_seed(self):
        a = random_batch(AVMNIST, 2, seed=5)
        b = random_batch(AVMNIST, 2, seed=5)
        np.testing.assert_array_equal(a["image"], b["image"])

    def test_different_seeds_differ(self):
        a = random_batch(AVMNIST, 2, seed=1)
        b = random_batch(AVMNIST, 2, seed=2)
        assert not np.allclose(a["image"], b["image"])

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError, match="positive"):
            random_modality_batch(AVMNIST.modalities[0], 0, rng)


class TestRandomTargets:
    @pytest.mark.parametrize("name", sorted(ALL_SHAPES))
    def test_targets_match_task(self, name):
        shapes = ALL_SHAPES[name]
        t = random_targets(shapes, 6, seed=0)
        kind = shapes.task.kind
        if kind == "classification":
            assert t.shape == (6,)
            assert t.max() < shapes.task.num_classes
        elif kind == "multilabel":
            assert t.shape == (6, shapes.task.num_classes)
            assert set(np.unique(t)) <= {0, 1}
        elif kind == "regression":
            assert t.shape == (6, shapes.task.output_dim)
        elif kind == "segmentation":
            assert t.shape == (6, *shapes.task.output_shape)
        elif kind == "generation":
            assert t.shape == (6, 4)

    def test_batch_bytes(self):
        batch = random_batch(AVMNIST, 3, seed=0)
        expected = 3 * (28 * 28 * 4 + 20 * 20 * 4)
        assert batch_bytes(batch) == expected
