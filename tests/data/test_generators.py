"""Latent-factor generator: shapes, determinism, channel semantics."""

import numpy as np
import pytest

from repro.data.generators import ChannelSpec, LatentMultimodalDataset
from repro.data.shapes import ALL_SHAPES, AVMNIST, CMU_MOSEI, MEDICAL_SEG, MEDICAL_VQA


class TestSampling:
    @pytest.mark.parametrize("name", sorted(ALL_SHAPES))
    def test_all_workloads_sample(self, name):
        shapes = ALL_SHAPES[name]
        ds = LatentMultimodalDataset(shapes, seed=0)
        batch, targets = ds.sample(5, seed=1)
        for spec in shapes.modalities:
            assert batch[spec.name].shape == (5, *spec.shape)
        assert len(targets) == 5

    def test_invalid_n_raises(self):
        ds = LatentMultimodalDataset(AVMNIST, seed=0)
        with pytest.raises(ValueError, match="positive"):
            ds.sample(0)

    def test_deterministic_given_seeds(self):
        a = LatentMultimodalDataset(AVMNIST, seed=3).sample(4, seed=7)
        b = LatentMultimodalDataset(AVMNIST, seed=3).sample(4, seed=7)
        np.testing.assert_array_equal(a[0]["image"], b[0]["image"])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_sample_seeds_differ(self):
        ds = LatentMultimodalDataset(AVMNIST, seed=3)
        a, _ = ds.sample(4, seed=1)
        b, _ = ds.sample(4, seed=2)
        assert not np.allclose(a["image"], b["image"])


class TestChannelSemantics:
    def test_snr_raises_signal_energy(self):
        quiet = LatentMultimodalDataset(
            AVMNIST, {"image": ChannelSpec(snr=0.1)}, seed=0, noise=0.0)
        loud = LatentMultimodalDataset(
            AVMNIST, {"image": ChannelSpec(snr=3.0)}, seed=0, noise=0.0)
        q, _ = quiet.sample(16, seed=1)
        l, _ = loud.sample(16, seed=1)
        assert np.abs(l["image"]).mean() > np.abs(q["image"]).mean() * 5

    def test_full_corruption_removes_class_info(self):
        # With corrupt_prob=1 and pure drops, same-class samples should not
        # share their class template.
        ds = LatentMultimodalDataset(AVMNIST, {"image": ChannelSpec(corrupt_prob=1.0)},
                                     seed=0, noise=0.0)
        ds._DROP_FRACTION = 1.0
        batch, _ = ds.sample(8, seed=1)
        assert np.abs(batch["image"]).max() == pytest.approx(0.0)

    def test_class_signal_separable(self):
        """Same-class samples correlate more than cross-class samples."""
        ds = LatentMultimodalDataset(AVMNIST, {"image": ChannelSpec(snr=5.0)},
                                     seed=0, noise=0.1)
        batch, y = ds.sample(64, seed=1)
        flat = batch["image"].reshape(64, -1)
        same, cross = [], []
        for i in range(0, 32):
            for j in range(32, 64):
                corr = np.dot(flat[i], flat[j]) / (
                    np.linalg.norm(flat[i]) * np.linalg.norm(flat[j]) + 1e-9)
                (same if y[i] == y[j] else cross).append(corr)
        assert np.mean(same) > np.mean(cross) + 0.3


class TestTaskSpecificSampling:
    def test_regression_targets_in_range(self):
        ds = LatentMultimodalDataset(CMU_MOSEI, seed=0)
        _, t = ds.sample(32, seed=1)
        assert t.shape == (32, 1)
        assert (np.abs(t) <= 1.0).all()

    def test_segmentation_masks_binary_ellipses(self):
        ds = LatentMultimodalDataset(MEDICAL_SEG, seed=0)
        batch, masks = ds.sample(4, seed=1)
        assert set(np.unique(masks)) <= {0, 1}
        # Each mask has a nonempty tumor region that is not the whole image.
        per_sample = masks.reshape(4, -1).mean(axis=1)
        assert (per_sample > 0.01).all() and (per_sample < 0.9).all()

    def test_generation_targets_deterministic_function(self):
        ds = LatentMultimodalDataset(MEDICAL_VQA, seed=0)
        _, answers = ds.sample(16, seed=1)
        assert answers.shape == (16, 4)
        assert answers.max() < MEDICAL_VQA.task.num_classes
        # Consecutive answer tokens differ by 1 (mod vocab) by construction.
        diffs = (answers[:, 1] - answers[:, 0]) % MEDICAL_VQA.task.num_classes
        assert (diffs == 1).all()

    def test_multilabel_tokens_mix_labels(self):
        mmimdb = ALL_SHAPES["mmimdb"]
        ds = LatentMultimodalDataset(mmimdb, seed=0)
        batch, y = ds.sample(8, seed=1)
        assert batch["text"].shape == (8, 48)
        assert y.shape == (8, mmimdb.task.num_classes)
