"""Mini-batch loader."""

import numpy as np
import pytest

from repro.data.loader import DataLoader


@pytest.fixture
def batch():
    return {
        "a": np.arange(10, dtype=np.float32).reshape(10, 1),
        "b": np.arange(20, dtype=np.float32).reshape(10, 2),
    }


@pytest.fixture
def targets():
    return np.arange(10)


class TestDataLoader:
    def test_batches_cover_everything(self, batch, targets):
        loader = DataLoader(batch, targets, batch_size=3)
        seen = np.concatenate([t for _, t in loader])
        np.testing.assert_array_equal(np.sort(seen), targets)
        assert len(loader) == 4

    def test_drop_last(self, batch, targets):
        loader = DataLoader(batch, targets, batch_size=3, drop_last=True)
        chunks = list(loader)
        assert len(chunks) == 3
        assert all(len(t) == 3 for _, t in chunks)

    def test_shuffle_reorders_but_preserves_pairing(self, batch, targets):
        loader = DataLoader(batch, targets, batch_size=10, shuffle=True, seed=1)
        xb, yb = next(iter(loader))
        assert not np.array_equal(yb, targets)  # reordered
        np.testing.assert_array_equal(xb["a"][:, 0], yb)  # pairing kept

    def test_modalities_sliced_together(self, batch, targets):
        loader = DataLoader(batch, targets, batch_size=4)
        xb, yb = next(iter(loader))
        np.testing.assert_array_equal(xb["a"][:, 0], yb)
        np.testing.assert_array_equal(xb["b"][:, 0], yb * 2)

    def test_invalid_batch_size(self, batch, targets):
        with pytest.raises(ValueError, match="positive"):
            DataLoader(batch, targets, batch_size=0)

    def test_unequal_modalities_raise(self, targets):
        bad = {"a": np.zeros((10, 1)), "b": np.zeros((9, 1))}
        with pytest.raises(ValueError, match="unequal"):
            DataLoader(bad, targets, batch_size=2)

    def test_target_length_mismatch_raises(self, batch):
        with pytest.raises(ValueError, match="length"):
            DataLoader(batch, np.arange(7), batch_size=2)
