"""Workload shape catalogue (Table 3 fidelity)."""

import pytest

from repro.data.shapes import (
    ALL_SHAPES,
    AVMNIST,
    MEDICAL_SEG,
    ModalityKind,
    ModalitySpec,
    TRANSFUSER,
)


class TestCatalogue:
    def test_nine_workloads(self):
        assert len(ALL_SHAPES) == 9

    def test_modal_counts_match_table3(self):
        expected = {
            "avmnist": 2, "mmimdb": 2, "cmu_mosei": 3, "mustard": 3,
            "medical_vqa": 2, "medical_seg": 4, "mujoco_push": 4,
            "vision_touch": 4, "transfuser": 2,
        }
        for name, count in expected.items():
            assert len(ALL_SHAPES[name].modalities) == count, name

    def test_task_kinds_match_table3(self):
        assert ALL_SHAPES["avmnist"].task.kind == "classification"
        assert ALL_SHAPES["mmimdb"].task.kind == "multilabel"
        assert ALL_SHAPES["cmu_mosei"].task.kind == "regression"
        assert ALL_SHAPES["medical_vqa"].task.kind == "generation"
        assert ALL_SHAPES["medical_seg"].task.kind == "segmentation"

    def test_medical_seg_has_four_mri_sequences(self):
        assert MEDICAL_SEG.modality_names == ("t1", "t1c", "t2", "flair")

    def test_transfuser_modalities(self):
        assert TRANSFUSER.modality_names == ("image", "lidar")

    def test_modality_lookup(self):
        spec = AVMNIST.modality("image")
        assert spec.kind == ModalityKind.IMAGE
        with pytest.raises(KeyError, match="no modality"):
            AVMNIST.modality("lidar")

    def test_sample_bytes(self):
        image = AVMNIST.modality("image")
        assert image.sample_bytes == 28 * 28 * 4
        text = ALL_SHAPES["mmimdb"].modality("text")
        assert text.sample_bytes == 48 * 8  # int64 tokens
        assert AVMNIST.sample_bytes == sum(m.sample_bytes for m in AVMNIST.modalities)


class TestValidation:
    def test_token_modality_needs_vocab(self):
        spec = ModalitySpec("t", ModalityKind.TOKENS, (8,), vocab_size=0)
        with pytest.raises(ValueError, match="vocab_size"):
            spec.validate()

    def test_token_modality_must_be_1d(self):
        spec = ModalitySpec("t", ModalityKind.TOKENS, (8, 2), vocab_size=10)
        with pytest.raises(ValueError, match="1-D"):
            spec.validate()

    def test_sequence_must_be_2d(self):
        spec = ModalitySpec("s", ModalityKind.SEQUENCE, (8,))
        with pytest.raises(ValueError, match="T, D"):
            spec.validate()

    def test_image_must_be_3d(self):
        spec = ModalitySpec("i", ModalityKind.IMAGE, (8, 8))
        with pytest.raises(ValueError, match="C, H, W"):
            spec.validate()
