"""Concurrent-modality execution mode of the engine."""

import pytest

from repro.data.synthetic import random_batch
from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.hw.latency import kernel_latency, saturated_latency
from repro.profiling.profiler import MMBenchProfiler
from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace
from repro.workloads.registry import get_workload


def k(modality, flops=1e7, threads=5_000, stage="encoder"):
    return KernelEvent(name="k", category=KernelCategory.GEMM, flops=flops,
                       bytes_read=1e5, bytes_written=1e4, threads=threads,
                       stage=stage, modality=modality)


class TestConcurrentEncoder:
    def test_underutilized_streams_overlap(self):
        """Two small streams: wall time ~ the straggler stream, not the sum."""
        trace = Trace(kernels=[k("image", flops=1e8), k("audio", flops=1e6)])
        device = get_device("2080ti")
        serial = ExecutionEngine(device).run(trace)
        concurrent = ExecutionEngine(device, concurrent_modalities=True).run(trace)
        image_alone = kernel_latency(trace.kernels[0], device).total
        assert concurrent.gpu_time < serial.gpu_time
        assert concurrent.gpu_time == pytest.approx(image_alone, rel=0.01)

    def test_saturated_streams_bound_by_throughput(self):
        """Huge streams cannot overlap for free: throughput bound rules."""
        trace = Trace(kernels=[k("image", flops=1e13, threads=10**8),
                               k("audio", flops=1e13, threads=10**8)])
        device = get_device("2080ti")
        concurrent = ExecutionEngine(device, concurrent_modalities=True).run(trace)
        tp_bound = sum(saturated_latency(ev, device) for ev in trace.kernels)
        assert concurrent.gpu_time >= tp_bound * 0.99

    def test_single_sm_device_serializes(self):
        """The Jetson Nano's single SM cannot co-schedule streams."""
        trace = Trace(kernels=[k("image"), k("audio")])
        nano = get_device("nano")
        serial = ExecutionEngine(nano).run(trace)
        concurrent = ExecutionEngine(nano, concurrent_modalities=True).run(trace)
        assert concurrent.gpu_time == pytest.approx(serial.gpu_time)

    def test_unimodal_unaffected(self):
        trace = Trace(kernels=[k("image"), k("image")])
        device = get_device("2080ti")
        serial = ExecutionEngine(device).run(trace)
        concurrent = ExecutionEngine(device, concurrent_modalities=True).run(trace)
        assert concurrent.gpu_time == pytest.approx(serial.gpu_time)

    def test_fusion_and_head_stay_serial(self):
        trace = Trace(kernels=[
            k("image"), k("audio"),
            k(None, stage="fusion"), k(None, stage="head"),
        ])
        device = get_device("2080ti")
        concurrent = ExecutionEngine(device, concurrent_modalities=True).run(trace)
        tail = sum(kernel_latency(ev, device).total
                   for ev in trace.kernels if ev.stage != "encoder")
        assert concurrent.gpu_time > tail

    def test_real_workload_speedup_on_server(self):
        info = get_workload("mujoco_push")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 16, seed=0)
        trace = MMBenchProfiler("2080ti").capture(model, batch)
        device = get_device("2080ti")
        serial = ExecutionEngine(device).run(trace)
        concurrent = ExecutionEngine(device, concurrent_modalities=True).run(trace)
        # Four encoder streams overlap on an underutilized server.
        assert concurrent.gpu_time < serial.gpu_time
        # Host-side time is unaffected by stream concurrency.
        assert concurrent.host_time == pytest.approx(serial.host_time)
