"""Stall attribution: normalization and the edge-vs-server shift."""

import pytest

from repro.hw.device import JETSON_NANO, RTX_2080TI
from repro.hw.stalls import STALL_REASONS, aggregate_stalls, stall_breakdown
from repro.trace.events import KernelCategory, KernelEvent


def make_kernel(**kw):
    base = dict(name="k", category=KernelCategory.GEMM, flops=1e8, bytes_read=1e6,
                bytes_written=1e5, threads=100_000, reuse_factor=8.0)
    base.update(kw)
    return KernelEvent(**base)


class TestNormalization:
    @pytest.mark.parametrize("category", list(KernelCategory))
    def test_sums_to_one(self, category):
        b = stall_breakdown(make_kernel(category=category), RTX_2080TI)
        assert sum(b.values()) == pytest.approx(1.0)
        assert set(b) == set(STALL_REASONS)
        assert all(v >= 0 for v in b.values())

    def test_aggregate_sums_to_one(self):
        b1 = stall_breakdown(make_kernel(), RTX_2080TI)
        b2 = stall_breakdown(make_kernel(category=KernelCategory.ELEWISE), RTX_2080TI)
        agg = aggregate_stalls([(b1, 2.0), (b2, 1.0)])
        assert sum(agg.values()) == pytest.approx(1.0)

    def test_aggregate_empty(self):
        agg = aggregate_stalls([])
        assert all(v == 0.0 for v in agg.values())


class TestDeviceShift:
    """The Figure-15 mechanism: stall mix shifts between platforms."""

    def test_exec_and_inst_grow_on_nano(self):
        kernel = make_kernel(flops=1e9, bytes_read=1e6)
        nano = stall_breakdown(kernel, JETSON_NANO)
        server = stall_breakdown(kernel, RTX_2080TI)
        assert nano["Exec"] > server["Exec"]
        assert nano["Inst"] > server["Inst"]

    def test_mem_cache_dominate_on_server(self):
        kernel = make_kernel(flops=1e7, bytes_read=1e8, category=KernelCategory.ELEWISE,
                             reuse_factor=2.0)
        server = stall_breakdown(kernel, RTX_2080TI)
        assert server["Mem"] + server["Cache"] > server["Exec"] + server["Inst"]


class TestCategoryEffects:
    def test_reduce_has_more_sync_than_elewise(self):
        reduce_ = stall_breakdown(make_kernel(category=KernelCategory.REDUCE), RTX_2080TI)
        elewise = stall_breakdown(make_kernel(category=KernelCategory.ELEWISE), RTX_2080TI)
        assert reduce_["Sync"] > elewise["Sync"]

    def test_reuse_moves_mem_to_cache(self):
        streaming = stall_breakdown(make_kernel(reuse_factor=1.0, flops=1e4,
                                                bytes_read=1e8), RTX_2080TI)
        cached = stall_breakdown(make_kernel(reuse_factor=20.0, flops=1e4,
                                             bytes_read=1e8), RTX_2080TI)
        assert cached["Cache"] > streaming["Cache"]
        assert cached["Mem"] < streaming["Mem"]
