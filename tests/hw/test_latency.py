"""Roofline latency model: bounds, monotonicity, device ordering."""

import pytest

from repro.hw.device import JETSON_NANO, JETSON_ORIN, RTX_2080TI
from repro.hw.latency import dram_traffic, kernel_latency, machine_fill
from repro.trace.events import KernelCategory, KernelEvent


def make_kernel(flops=1e6, bytes_read=1e5, bytes_written=1e4, threads=100_000,
                category=KernelCategory.GEMM, reuse=8.0, coalesced=1.0):
    return KernelEvent(name="k", category=category, flops=flops, bytes_read=bytes_read,
                       bytes_written=bytes_written, threads=threads,
                       reuse_factor=reuse, coalesced_fraction=coalesced)


class TestLatencyBasics:
    def test_positive_and_bounded_below_by_overhead(self):
        lat = kernel_latency(make_kernel(), RTX_2080TI)
        assert lat.total >= RTX_2080TI.kernel_fixed_overhead

    def test_roofline_max(self):
        lat = kernel_latency(make_kernel(), RTX_2080TI)
        assert lat.total == pytest.approx(
            max(lat.compute_time, lat.memory_time) + lat.fixed_overhead
        )

    def test_bound_labels(self):
        compute_heavy = make_kernel(flops=1e10, bytes_read=1e3, reuse=48)
        memory_heavy = make_kernel(flops=1e3, bytes_read=1e8, reuse=1, category=KernelCategory.ELEWISE)
        assert kernel_latency(compute_heavy, RTX_2080TI).bound == "compute"
        assert kernel_latency(memory_heavy, RTX_2080TI).bound == "memory"

    def test_monotonic_in_flops(self):
        small = kernel_latency(make_kernel(flops=1e8), RTX_2080TI)
        large = kernel_latency(make_kernel(flops=1e10), RTX_2080TI)
        assert large.total > small.total

    def test_monotonic_in_bytes(self):
        small = kernel_latency(make_kernel(flops=0, bytes_read=1e6), RTX_2080TI)
        large = kernel_latency(make_kernel(flops=0, bytes_read=1e9), RTX_2080TI)
        assert large.total > small.total

    def test_zero_work_costs_overhead_only(self):
        lat = kernel_latency(make_kernel(flops=0, bytes_read=0, bytes_written=0), RTX_2080TI)
        assert lat.total == pytest.approx(RTX_2080TI.kernel_fixed_overhead)


class TestDeviceOrdering:
    def test_nano_slower_than_server(self):
        kernel = make_kernel(flops=1e9, bytes_read=1e7)
        assert kernel_latency(kernel, JETSON_NANO).total > kernel_latency(kernel, RTX_2080TI).total

    def test_orin_between(self):
        kernel = make_kernel(flops=1e9, bytes_read=1e7)
        nano = kernel_latency(kernel, JETSON_NANO).total
        orin = kernel_latency(kernel, JETSON_ORIN).total
        server = kernel_latency(kernel, RTX_2080TI).total
        assert server < orin < nano


class TestSmallKernelInefficiency:
    def test_tiny_kernel_underutilizes_big_gpu(self):
        tiny = make_kernel(threads=512)
        assert machine_fill(tiny, RTX_2080TI) < 0.05

    def test_same_kernel_fills_nano(self):
        tiny = make_kernel(threads=512)
        assert machine_fill(tiny, JETSON_NANO) > machine_fill(tiny, RTX_2080TI)

    def test_batch_scaling_superlinear_throughput(self):
        # 10x the work in one kernel should take well under 10x the time on
        # an underutilized device — the Figure 12 mechanism.
        small = make_kernel(flops=1e7, threads=4_000)
        big = make_kernel(flops=1e8, bytes_read=1e6, threads=40_000)
        t_small = kernel_latency(small, RTX_2080TI).total
        t_big = kernel_latency(big, RTX_2080TI).total
        assert t_big < 10 * t_small


class TestDramTraffic:
    def test_reuse_filters_reads(self):
        no_reuse = make_kernel(reuse=1.0, bytes_read=1e8)
        high_reuse = make_kernel(reuse=32.0, bytes_read=1e8)
        assert dram_traffic(high_reuse, RTX_2080TI) < dram_traffic(no_reuse, RTX_2080TI)

    def test_writes_pass_through(self):
        kernel = make_kernel(bytes_read=0.0, bytes_written=1e6, reuse=32.0)
        assert dram_traffic(kernel, RTX_2080TI) == pytest.approx(1e6)

    def test_reuse_capped(self):
        absurd = make_kernel(reuse=1e9, bytes_read=1e9)
        assert dram_traffic(absurd, RTX_2080TI) > 1e9 / 100.0

    def test_coalescing_slows_memory(self):
        aligned = make_kernel(flops=0, bytes_read=1e8, coalesced=1.0)
        scattered = make_kernel(flops=0, bytes_read=1e8, coalesced=0.2)
        assert (kernel_latency(scattered, RTX_2080TI).total
                > kernel_latency(aligned, RTX_2080TI).total)
