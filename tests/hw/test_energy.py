"""Energy model."""

import pytest

from repro.data.synthetic import random_batch
from repro.hw.device import DeviceSpec
from repro.hw.energy import (
    coefficients_for,
    energy_delay_product,
    modality_energy,
    report_energy,
    stage_energy,
)
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def reports():
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 32, seed=0)
    profiler = MMBenchProfiler("2080ti")
    trace = profiler.capture(model, batch)
    return {
        "2080ti": profiler.price(model, trace, 32, device="2080ti"),
        "nano": profiler.price(model, trace, 32, device="nano"),
        "orin": profiler.price(model, trace, 32, device="orin"),
    }


class TestEnergyBreakdown:
    def test_components_positive_and_total(self, reports):
        e = report_energy(reports["2080ti"])
        assert e.compute > 0 and e.memory > 0 and e.idle > 0 and e.host > 0
        assert e.total == pytest.approx(e.compute + e.memory + e.idle + e.host)
        assert e.device_total == pytest.approx(e.total - e.host)
        assert set(e.as_dict()) == {"compute", "memory", "idle", "host", "total"}

    def test_server_burns_more_energy_per_batch(self, reports):
        """The server is faster but runs at ~15x the board power."""
        server = report_energy(reports["2080ti"])
        nano = report_energy(reports["nano"])
        # Energy-delay product still favors the server (it is much faster).
        assert (energy_delay_product(reports["2080ti"])
                < energy_delay_product(reports["nano"]))
        # Dynamic (compute) energy is device-dependent through pJ/FLOP.
        assert server.compute != nano.compute

    def test_stage_energy_sums_to_device_dynamic_plus_idle(self, reports):
        report = reports["2080ti"]
        per_stage = stage_energy(report)
        assert set(per_stage) == {"encoder", "fusion", "head"}
        total = report_energy(report)
        assert sum(per_stage.values()) == pytest.approx(total.device_total, rel=1e-6)

    def test_encoder_stage_costs_most(self, reports):
        per_stage = stage_energy(reports["2080ti"])
        assert per_stage["encoder"] > per_stage["fusion"]
        assert per_stage["encoder"] > per_stage["head"]

    def test_modality_energy(self, reports):
        per_modality = modality_energy(reports["2080ti"])
        assert set(per_modality) == {"image", "audio"}
        assert per_modality["image"] > per_modality["audio"]

    def test_unknown_device_raises(self, reports):
        fake = DeviceSpec(
            name="tpu", peak_fp32_flops=1, sm_count=1, max_threads_per_sm=1,
            clock_hz=1, issue_width=1, dram_bandwidth=1, dram_capacity=1,
            l2_bytes=1, pcie_bandwidth=1, unified_memory=False,
            kernel_launch_overhead=1, kernel_fixed_overhead=1, transfer_latency=1,
            host_gflops=1, inst_fetch_pressure=0, exec_dep_pressure=0)
        with pytest.raises(KeyError, match="no energy coefficients"):
            coefficients_for(fake)
