"""Golden equivalence: vectorized engine == scalar reference, everywhere.

The columnar :class:`~repro.hw.engine.ExecutionEngine` must reproduce the
scalar reference path (:mod:`repro.hw.reference`) to 1e-9 relative
tolerance on *every* ``ExecutionReport`` field — scalars, per-stage /
per-modality / per-category aggregations, counters, stalls, histograms
and per-kernel records — across all nine registry workloads and the three
paper device models. This is the contract that lets the vectorized path
replace the interpreter loop on every hot path.
"""

import numpy as np
import pytest

from repro.hw.device import DEVICES, get_device
from repro.hw.engine import ExecutionEngine
from repro.hw.reference import ScalarExecutionEngine
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads

REL = 1e-9
WORKLOADS = list_workloads()
DEVICE_NAMES = ("2080ti", "orin", "nano")
BATCH_SIZE = 8


@pytest.fixture(scope="module")
def traces():
    """One device-independent stored trace per registry workload."""
    store = TraceStore()
    return {
        name: store.get_or_capture(name, batch_size=BATCH_SIZE, backend="meta")
        for name in WORKLOADS
    }


def _assert_close(got, want, where: str):
    assert got == pytest.approx(want, rel=REL, abs=1e-300), where


def _assert_dict_close(got: dict, want: dict, where: str):
    assert set(got) == set(want), where
    for key, value in want.items():
        _assert_close(got[key], value, f"{where}[{key!r}]")


def _assert_nested_close(got: dict, want: dict, where: str):
    assert set(got) == set(want), where
    for key, inner in want.items():
        _assert_dict_close(got[key], inner, f"{where}[{key!r}]")


SCALAR_FIELDS = (
    "gpu_time", "host_time", "launch_time", "transfer_time", "data_prep_time",
    "sync_time", "memory_pressure", "slowdown", "total_time", "cpu_runtime_share",
)


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_report_fields_match_reference(traces, workload, device_name):
    stored = traces[workload]
    device = get_device(device_name)
    kwargs = dict(model_bytes=stored.parameter_bytes, input_bytes=stored.input_bytes)
    vec = ExecutionEngine(device).run(stored.trace, **kwargs)
    ref = ScalarExecutionEngine(device).run(stored.trace, **kwargs)

    for field in SCALAR_FIELDS:
        _assert_close(getattr(vec, field), getattr(ref, field),
                      f"{workload}/{device_name}.{field}")
    for field in ("model", "dataset", "intermediate", "total"):
        _assert_close(getattr(vec.memory, field), getattr(ref.memory, field),
                      f"{workload}/{device_name}.memory.{field}")

    _assert_dict_close(vec.stage_time(), ref.stage_time(),
                       f"{workload}/{device_name}.stage_time")
    _assert_nested_close(vec.stage_counters(), ref.stage_counters(),
                         f"{workload}/{device_name}.stage_counters")
    _assert_nested_close(vec.stage_stalls(), ref.stage_stalls(),
                         f"{workload}/{device_name}.stage_stalls")
    _assert_dict_close(vec.overall_stalls(), ref.overall_stalls(),
                       f"{workload}/{device_name}.overall_stalls")
    _assert_dict_close(vec.category_time_breakdown(), ref.category_time_breakdown(),
                       f"{workload}/{device_name}.category_time_breakdown")
    for stage in stored.trace.stages():
        _assert_dict_close(vec.category_time_breakdown(stage),
                           ref.category_time_breakdown(stage),
                           f"{workload}/{device_name}.category[{stage}]")
    _assert_dict_close(vec.modality_time(), ref.modality_time(),
                       f"{workload}/{device_name}.modality_time")
    _assert_close(vec.modality_imbalance(), ref.modality_imbalance(),
                  f"{workload}/{device_name}.modality_imbalance")
    _assert_dict_close(vec.kernel_size_distribution(), ref.kernel_size_distribution(),
                       f"{workload}/{device_name}.kernel_size_distribution")


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
def test_per_kernel_records_match_reference(traces, device_name):
    stored = traces["avmnist"]
    device = get_device(device_name)
    vec = ExecutionEngine(device).run(stored.trace)
    ref = ScalarExecutionEngine(device).run(stored.trace)
    assert len(vec.kernels) == len(ref.kernels) == len(stored.trace.kernels)
    for kv, kr in zip(vec.kernels, ref.kernels):
        assert kv.event.name == kr.event.name
        _assert_close(kv.duration, kr.duration, "kernel.duration")
        for field in ("total", "compute_time", "memory_time", "fixed_overhead",
                      "dram_bytes", "compute_utilization", "occupancy"):
            _assert_close(getattr(kv.latency, field), getattr(kr.latency, field),
                          f"latency.{field}")
        for field in ("duration", "dram_utilization", "achieved_occupancy", "ipc",
                      "gld_efficiency", "gst_efficiency", "l1_hit_rate",
                      "l2_hit_rate", "l2_read_hit_rate", "l2_write_hit_rate",
                      "fp32_ops", "dram_read_bytes", "read_transactions_per_second"):
            _assert_close(getattr(kv.counters, field), getattr(kr.counters, field),
                          f"counters.{field}")
        _assert_dict_close(kv.stalls, kr.stalls, "kernel.stalls")


@pytest.mark.parametrize("device_name", DEVICE_NAMES)
@pytest.mark.parametrize("workload", ("avmnist", "mujoco_push"))
def test_concurrent_modalities_match_reference(traces, workload, device_name):
    stored = traces[workload]
    device = get_device(device_name)
    vec = ExecutionEngine(device, concurrent_modalities=True).run(stored.trace)
    ref = ScalarExecutionEngine(device, concurrent_modalities=True).run(stored.trace)
    _assert_close(vec.gpu_time, ref.gpu_time, f"{workload}/{device_name}.gpu_time")
    _assert_close(vec.host_time, ref.host_time, f"{workload}/{device_name}.host_time")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_run_sweep_matches_per_device_runs(traces, workload):
    """One broadcasted pass == D independent single-device runs, exactly."""
    stored = traces[workload]
    kwargs = dict(model_bytes=stored.parameter_bytes, input_bytes=stored.input_bytes)
    engine = ExecutionEngine(get_device("2080ti"))
    sweep = engine.run_sweep(stored.trace, DEVICE_NAMES, **kwargs)
    assert [r.device.name for r in sweep] == [get_device(d).name for d in DEVICE_NAMES]
    for report, device_name in zip(sweep, DEVICE_NAMES):
        single = ExecutionEngine(get_device(device_name)).run(stored.trace, **kwargs)
        assert report.total_time == single.total_time  # bit-exact
        assert np.array_equal(report.durations, single.durations)
        assert report.stage_time() == single.stage_time()
        assert report.overall_stalls() == single.overall_stalls()


def test_thrashed_run_matches_reference(traces):
    """Over-capacity slowdown path: scaled latencies must agree too."""
    stored = traces["avmnist"]
    nano = get_device("nano")
    kwargs = dict(model_bytes=2.9e9, input_bytes=1e8)
    vec = ExecutionEngine(nano).run(stored.trace, **kwargs)
    ref = ScalarExecutionEngine(nano).run(stored.trace, **kwargs)
    assert vec.slowdown > 1.0
    _assert_close(vec.gpu_time, ref.gpu_time, "thrashed.gpu_time")
    _assert_close(vec.total_time, ref.total_time, "thrashed.total_time")
    _assert_close(vec.kernels[0].duration, ref.kernels[0].duration,
                  "thrashed.kernel0.duration")


def test_all_registry_devices_priced():
    """Every canonical device spec can price a trace (no lookup drift)."""
    store = TraceStore()
    stored = store.get_or_capture("avmnist", batch_size=2, backend="meta")
    for spec in {d.name: d for d in DEVICES.values()}.values():
        report = ExecutionEngine(spec).run(stored.trace)
        assert report.total_time > 0
