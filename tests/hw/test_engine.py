"""Execution engine: report aggregations and host-event pricing."""

import numpy as np
import pytest

from repro import nn
from repro.hw.device import JETSON_NANO, RTX_2080TI, get_device
from repro.hw.engine import ExecutionEngine, KERNEL_SIZE_BINS
from repro.nn.tensor import Tensor
from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.tracer import Trace, Tracer


def k(stage="encoder", modality=None, flops=1e7, threads=10_000, cat=KernelCategory.GEMM):
    return KernelEvent(name="k", category=cat, flops=flops, bytes_read=1e5,
                       bytes_written=1e4, threads=threads, stage=stage, modality=modality)


@pytest.fixture
def trace():
    return Trace(
        kernels=[
            k("encoder", "image", flops=1e8),
            k("encoder", "audio", flops=1e6),
            k("fusion", None, flops=1e5, cat=KernelCategory.ELEWISE),
            k("head", None, flops=1e5),
        ],
        host_events=[
            HostEvent(kind=HostOpKind.H2D, bytes=1e6),
            HostEvent(kind=HostOpKind.SYNC),
            HostEvent(kind=HostOpKind.D2H, bytes=1e5),
            HostEvent(kind=HostOpKind.DATA_PREP, bytes=1e5),
            HostEvent(kind=HostOpKind.PREPROCESS, bytes=1e6),
            HostEvent(kind=HostOpKind.LAUNCH),
        ],
    )


@pytest.fixture
def report(trace):
    return ExecutionEngine(RTX_2080TI).run(trace, model_bytes=1e6, input_bytes=1e6)


class TestReportBasics:
    def test_times_positive_and_consistent(self, report):
        assert report.gpu_time > 0
        assert report.host_time > 0
        assert report.total_time == pytest.approx(report.gpu_time + report.host_time)
        assert 0.0 < report.cpu_runtime_share < 1.0

    def test_host_decomposition(self, report):
        total_host = (report.launch_time + report.transfer_time
                      + report.data_prep_time + report.sync_time)
        assert report.host_time == pytest.approx(total_host)
        assert report.transfer_time > 0
        assert report.sync_time > 0
        assert report.data_prep_time > 0

    def test_kernel_count(self, report):
        assert len(report.kernels) == 4

    def test_no_thrash_at_low_pressure(self, report):
        assert report.slowdown == 1.0


class TestAggregations:
    def test_stage_time_keys(self, report):
        st = report.stage_time()
        assert set(st) == {"encoder", "fusion", "head"}
        assert st["encoder"] > st["head"]

    def test_stage_counters(self, report):
        sc = report.stage_counters()
        assert "dram_utilization" in sc["encoder"]
        assert "ipc" in sc["fusion"]

    def test_stage_stalls_normalized(self, report):
        for stalls in report.stage_stalls().values():
            assert sum(stalls.values()) == pytest.approx(1.0)

    def test_overall_stalls(self, report):
        assert sum(report.overall_stalls().values()) == pytest.approx(1.0)

    def test_category_breakdown(self, report):
        shares = report.category_time_breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        fusion_only = report.category_time_breakdown(stage="fusion")
        assert set(fusion_only) == {KernelCategory.ELEWISE}

    def test_modality_time(self, report):
        mt = report.modality_time()
        assert set(mt) == {"image", "audio"}
        assert mt["image"] > mt["audio"]
        assert report.modality_imbalance() > 1.0

    def test_kernel_size_distribution(self, report):
        dist = report.kernel_size_distribution()
        assert set(dist) == set(KERNEL_SIZE_BINS)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_hotspot(self, report):
        top = report.hotspot(KernelCategory.GEMM, stage="encoder")
        assert top.event.flops == 1e8
        assert report.hotspot(KernelCategory.CONV) is None


class TestThrashing:
    def test_over_capacity_slows_everything(self, trace):
        engine = ExecutionEngine(JETSON_NANO)
        small = engine.run(trace, model_bytes=1e6, input_bytes=1e6)
        big = engine.run(trace, model_bytes=2.8e9, input_bytes=1e6)
        assert big.slowdown > 1.0
        assert big.total_time > small.total_time * 2
        # Kernel latencies are inflated consistently.
        assert big.kernels[0].duration > small.kernels[0].duration


class TestEndToEndTrace:
    def test_real_model_report(self, rng):
        model = nn.Sequential(nn.Linear(8, 32, rng=rng), nn.ReLU(), nn.Linear(32, 4, rng=rng))
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
        trace = tracer.finish()
        report = ExecutionEngine(get_device("2080ti")).run(trace)
        assert report.gpu_time > 0
        assert len(report.kernels) == len(trace.kernels)
