"""Counter derivation: ranges, category effects, aggregation."""

import pytest

from repro.hw.counters import aggregate_counters, derive_counters
from repro.hw.device import JETSON_NANO, RTX_2080TI
from repro.trace.events import KernelCategory, KernelEvent


def make_kernel(**kw):
    base = dict(name="k", category=KernelCategory.GEMM, flops=1e8, bytes_read=1e6,
                bytes_written=1e5, threads=100_000, reuse_factor=8.0,
                coalesced_fraction=0.9)
    base.update(kw)
    return KernelEvent(**base)


class TestRanges:
    @pytest.mark.parametrize("category", list(KernelCategory))
    def test_all_counters_in_range(self, category):
        c = derive_counters(make_kernel(category=category), RTX_2080TI)
        assert 0.0 <= c.dram_utilization <= 1.0
        assert 0.0 <= c.achieved_occupancy <= 1.0
        assert 0.0 <= c.gld_efficiency <= 1.0
        assert 0.0 <= c.gst_efficiency <= 1.0
        assert 0.0 <= c.l1_hit_rate <= 1.0
        assert 0.0 <= c.l2_hit_rate <= 1.0
        assert c.ipc >= 0.0
        assert c.duration > 0.0

    def test_ipc_below_issue_width(self):
        c = derive_counters(make_kernel(flops=1e12), RTX_2080TI)
        assert c.ipc <= RTX_2080TI.issue_width


class TestCategoryEffects:
    def test_gemm_ipc_above_reduce(self):
        gemm = derive_counters(make_kernel(category=KernelCategory.GEMM), RTX_2080TI)
        reduce_ = derive_counters(make_kernel(category=KernelCategory.REDUCE), RTX_2080TI)
        assert gemm.ipc > reduce_.ipc

    def test_memory_bound_kernel_has_high_dram_util(self):
        streaming = make_kernel(category=KernelCategory.ELEWISE, flops=1e4,
                                bytes_read=5e8, bytes_written=5e8, reuse_factor=1.0,
                                threads=10_000_000)
        compute = make_kernel(flops=1e11, bytes_read=1e5, reuse_factor=48.0,
                              threads=10_000_000)
        s = derive_counters(streaming, RTX_2080TI)
        c = derive_counters(compute, RTX_2080TI)
        assert s.dram_utilization > c.dram_utilization

    def test_coalescing_reflected_in_gld(self):
        c = derive_counters(make_kernel(coalesced_fraction=0.4), RTX_2080TI)
        assert c.gld_efficiency == pytest.approx(0.4)

    def test_reuse_reflected_in_l2(self):
        low = derive_counters(make_kernel(reuse_factor=1.0, bytes_read=1e8), RTX_2080TI)
        high = derive_counters(make_kernel(reuse_factor=32.0, bytes_read=1e8), RTX_2080TI)
        assert high.l2_hit_rate > low.l2_hit_rate

    def test_small_working_set_hits_l2(self):
        tiny = derive_counters(make_kernel(bytes_read=1e3, reuse_factor=1.0), RTX_2080TI)
        assert tiny.l2_hit_rate >= 0.60

    def test_fp32_ops_passthrough(self):
        c = derive_counters(make_kernel(flops=123.0), RTX_2080TI)
        assert c.fp32_ops == 123.0

    def test_occupancy_higher_on_nano(self):
        kernel = make_kernel(threads=4096)
        nano = derive_counters(kernel, JETSON_NANO)
        server = derive_counters(kernel, RTX_2080TI)
        assert nano.achieved_occupancy > server.achieved_occupancy


class TestAggregation:
    def test_weighted_average(self):
        a = derive_counters(make_kernel(flops=1e9), RTX_2080TI)
        b = derive_counters(make_kernel(flops=1e5, category=KernelCategory.OTHER), RTX_2080TI)
        agg = aggregate_counters([(a, 3.0), (b, 1.0)])
        assert min(a.ipc, b.ipc) <= agg["ipc"] <= max(a.ipc, b.ipc)
        assert agg["duration"] == pytest.approx(4.0)
        assert agg["fp32_ops"] == pytest.approx(a.fp32_ops + b.fp32_ops)

    def test_empty_aggregation(self):
        assert aggregate_counters([]) == {}
