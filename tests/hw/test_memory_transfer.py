"""Memory model and host-device transfer model."""

import pytest

from repro.hw.device import JETSON_NANO, JETSON_ORIN, RTX_2080TI
from repro.hw.memory import (
    MemoryBreakdown,
    capacity_pressure,
    memory_breakdown,
    thrash_factor,
)
from repro.hw.transfer import d2h_time, h2d_time, host_data_prep_time
from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace


def k(stage, bytes_written):
    return KernelEvent(name="k", category=KernelCategory.GEMM, flops=1.0,
                       bytes_read=1.0, bytes_written=bytes_written, threads=1,
                       stage=stage)


class TestMemoryBreakdown:
    def test_components(self):
        trace = Trace(kernels=[k("encoder", 100.0), k("encoder", 50.0), k("fusion", 30.0)])
        mem = memory_breakdown(trace, model_bytes=1000.0, input_bytes=200.0)
        assert mem.model == 1000.0
        assert mem.dataset == 200.0
        assert mem.intermediate == 150.0  # encoder stage is the live peak
        assert mem.total == 1350.0

    def test_as_dict(self):
        mem = MemoryBreakdown(1.0, 2.0, 3.0)
        d = mem.as_dict()
        assert d["total"] == 6.0

    def test_empty_trace(self):
        mem = memory_breakdown(Trace(), 10.0, 5.0)
        assert mem.intermediate == 0.0


class TestCapacityPressure:
    def test_discrete_gpu_full_capacity(self):
        mem = MemoryBreakdown(model=5.5e9, dataset=0, intermediate=0)
        assert capacity_pressure(mem, RTX_2080TI) == pytest.approx(0.5)

    def test_unified_memory_reserves_os_share(self):
        mem = MemoryBreakdown(model=1e9, dataset=0, intermediate=0)
        # Nano: usable = 4 GB * 0.75 - 0.5 GB = 2.5 GB.
        assert capacity_pressure(mem, JETSON_NANO) == pytest.approx(0.4)

    def test_orin_has_headroom(self):
        mem = MemoryBreakdown(model=1e9, dataset=0, intermediate=0)
        assert capacity_pressure(mem, JETSON_ORIN) < 0.1


class TestThrashFactor:
    def test_no_penalty_below_knee(self):
        assert thrash_factor(0.5) == 1.0
        assert thrash_factor(0.8) == 1.0

    def test_grows_past_knee(self):
        assert thrash_factor(1.0) > thrash_factor(0.9) > 1.0

    def test_capped(self):
        assert thrash_factor(100.0) == 12.0

    def test_monotonic(self):
        values = [thrash_factor(p) for p in (0.7, 0.85, 1.0, 1.5, 3.0)]
        assert values == sorted(values)


class TestTransfers:
    def test_h2d_scales_with_bytes(self):
        assert h2d_time(1e8, RTX_2080TI) > h2d_time(1e6, RTX_2080TI)

    def test_h2d_has_fixed_latency(self):
        assert h2d_time(0.0, RTX_2080TI) == pytest.approx(RTX_2080TI.transfer_latency)

    def test_unified_memory_skips_copy(self):
        big = h2d_time(1e9, JETSON_NANO)
        small = h2d_time(1.0, JETSON_NANO)
        assert big == small == pytest.approx(JETSON_NANO.transfer_latency)

    def test_d2h_symmetric(self):
        assert d2h_time(1e6, RTX_2080TI) == pytest.approx(h2d_time(1e6, RTX_2080TI))

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            h2d_time(-1.0, RTX_2080TI)
        with pytest.raises(ValueError):
            host_data_prep_time(-1.0, RTX_2080TI)

    def test_data_prep_slower_on_weak_host(self):
        assert (host_data_prep_time(1e6, JETSON_NANO)
                > host_data_prep_time(1e6, RTX_2080TI))
