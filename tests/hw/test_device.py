"""Device catalogue."""

import pytest

from repro.hw.device import DEVICES, JETSON_NANO, JETSON_ORIN, RTX_2080TI, get_device


class TestCatalog:
    def test_aliases(self):
        assert get_device("2080ti") is RTX_2080TI
        assert get_device("nano") is JETSON_NANO
        assert get_device("orin") is JETSON_ORIN
        assert get_device("jetson_nano") is JETSON_NANO

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_device("tpu")

    def test_datasheet_ordering(self):
        assert RTX_2080TI.peak_fp32_flops > JETSON_ORIN.peak_fp32_flops > JETSON_NANO.peak_fp32_flops
        assert RTX_2080TI.dram_bandwidth > JETSON_ORIN.dram_bandwidth > JETSON_NANO.dram_bandwidth

    def test_unified_memory_flags(self):
        assert not RTX_2080TI.unified_memory
        assert JETSON_NANO.unified_memory and JETSON_ORIN.unified_memory

    def test_derived_properties(self):
        assert RTX_2080TI.max_resident_threads == 68 * 1024
        assert RTX_2080TI.flops_per_byte_balance == pytest.approx(13.45e12 / 616e9)

    def test_edge_pressure_parameters(self):
        # The Figure-15 stall-shift mechanism requires these orderings.
        assert JETSON_NANO.exec_dep_pressure > RTX_2080TI.exec_dep_pressure
        assert JETSON_NANO.inst_fetch_pressure > RTX_2080TI.inst_fetch_pressure

    def test_frozen(self):
        with pytest.raises(Exception):
            RTX_2080TI.sm_count = 1

    def test_all_registered(self):
        assert {"rtx2080ti", "jetson_nano", "jetson_orin"} <= set(DEVICES)
