"""Stream-level schedules on a partitioned device, and their agreement
with the closed-form Sec. 4.3.3 idle-resource analysis."""

import numpy as np
import pytest

from repro.core.analysis.concurrency import analytic_concurrency, analyze_concurrency
from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.hw.streams import (
    StreamLoad,
    StreamScheduler,
    modality_schedule,
    modality_streams,
    tenant_schedule,
)
from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.store import TraceStore
from repro.trace.tracer import Trace
from repro.workloads.registry import list_workloads


def k(modality, flops=1e7, stage="encoder"):
    return KernelEvent(name="k", category=KernelCategory.GEMM, flops=flops,
                       bytes_read=1e5, bytes_written=1e4, threads=5_000,
                       stage=stage, modality=modality)


@pytest.fixture(scope="module")
def store():
    return TraceStore()


def priced_report(store, workload, batch_size=16, device="2080ti"):
    stored = store.get_or_capture(workload, batch_size=batch_size, backend="meta")
    return ExecutionEngine(get_device(device)).run(
        stored.trace, model_bytes=stored.parameter_bytes,
        input_bytes=stored.input_bytes)


class TestScheduler:
    def test_timeline_is_back_to_back_per_stream(self):
        sched = StreamScheduler("2080ti").schedule([
            StreamLoad("a", np.array([1.0, 2.0, 3.0]), share=0.5),
            StreamLoad("b", np.array([4.0]), share=0.5),
        ])
        a = sched.streams["a"]  # half speed: each kernel takes twice its time
        assert a.start.tolist() == [0.0, 2.0, 6.0]
        assert a.end.tolist() == [2.0, 6.0, 12.0]
        assert a.busy_until == 12.0
        assert sched.makespan == 12.0
        assert sched.straggler == "a"
        assert sched.streams["b"].idle_window(sched.makespan) == (8.0, 12.0)

    def test_share_scales_the_effective_roofline(self):
        full = StreamScheduler("2080ti").schedule(
            [StreamLoad("a", np.array([2.0]), share=1.0)])
        half = StreamScheduler("2080ti").schedule(
            [StreamLoad("a", np.array([2.0]), share=0.5)])
        assert half.streams["a"].busy_until == pytest.approx(
            2 * full.streams["a"].busy_until)
        # Native time divides the scaling back out.
        assert half.streams["a"].native_time == pytest.approx(2.0)

    def test_idle_geometry_equal_shares(self):
        # Two streams, times 1 and 3, half the device each: the short
        # stream's half sits idle for 2 of the 6-second (scaled) window.
        sched = StreamScheduler("2080ti").schedule([
            StreamLoad("short", np.array([1.0]), share=0.5),
            StreamLoad("long", np.array([3.0]), share=0.5),
        ])
        assert sched.makespan == pytest.approx(6.0)
        assert sched.idle_resource_fraction() == pytest.approx((3.0 - 1.0) / (2 * 3.0))
        assert sched.idle_window_fraction() == pytest.approx(2.0 / 3.0)
        assert sched.serial_time() == pytest.approx(4.0)
        assert sched.native_makespan() == pytest.approx(3.0)
        assert sched.concurrency_speedup() == pytest.approx(4.0 / 3.0)

    def test_validation(self):
        scheduler = StreamScheduler("2080ti")
        with pytest.raises(ValueError, match="at least one"):
            scheduler.schedule([])
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.schedule([StreamLoad("a", np.ones(1), 0.5),
                                StreamLoad("a", np.ones(1), 0.5)])
        with pytest.raises(ValueError, match="oversubscribe"):
            scheduler.schedule([StreamLoad("a", np.ones(1), 0.8),
                                StreamLoad("b", np.ones(1), 0.8)])
        with pytest.raises(ValueError, match="share"):
            StreamLoad("a", np.ones(1), share=0.0)


class TestModalityStreams:
    def test_splits_encoder_kernels_by_modality(self):
        trace = Trace(kernels=[k("image"), k("audio"), k("image"),
                               k(None, stage="fusion")])
        cols = trace.columns()
        durations = np.array([1.0, 2.0, 3.0, 99.0])
        loads = modality_streams(cols, durations)
        assert [load.name for load in loads] == ["image", "audio"]
        image = loads[0]
        assert image.durations.tolist() == [1.0, 3.0]
        assert image.share == pytest.approx(0.5)

    def test_launch_overhead_folds_into_each_kernel(self):
        trace = Trace(kernels=[k("image"), k("image")])
        loads = modality_streams(trace.columns(), np.array([1.0, 2.0]),
                                 launch_overhead=0.5)
        assert loads[0].native_time == pytest.approx(4.0)

    def test_custom_shares_and_missing_share(self):
        trace = Trace(kernels=[k("image"), k("audio")])
        cols = trace.columns()
        loads = modality_streams(cols, np.array([1.0, 1.0]),
                                 shares={"image": 0.7, "audio": 0.3})
        assert {load.name: load.share
                for load in loads} == {"image": 0.7, "audio": 0.3}
        with pytest.raises(KeyError, match="audio"):
            modality_streams(cols, np.array([1.0, 1.0]), shares={"image": 1.0})

    def test_no_encoder_stage_rejected(self):
        trace = Trace(kernels=[k(None, stage="head")])
        with pytest.raises(ValueError, match="no 'encoder' stage"):
            modality_streams(trace.columns(), np.array([1.0]))


class TestReportSchedules:
    def test_stream_schedule_matches_modality_time(self, store):
        report = priced_report(store, "mujoco_push")
        sched = report.stream_schedule()
        native = sched.native_times()
        times = report.modality_time()
        assert set(native) == set(times)
        for mod in times:
            assert native[mod] == pytest.approx(times[mod], rel=1e-9)

    def test_schedule_trace_entry_point(self, store):
        stored = store.get_or_capture("avmnist", batch_size=8, backend="meta")
        sched = StreamScheduler("2080ti").schedule_trace(stored.trace)
        assert set(sched.streams) == {"image", "audio"}
        assert sched.makespan > 0

    def test_tenant_schedule_overlaps_two_workloads(self, store):
        reports = {"avmnist": priced_report(store, "avmnist"),
                   "transfuser": priced_report(store, "transfuser")}
        sched = tenant_schedule(reports)
        assert set(sched.streams) == {"avmnist", "transfuser"}
        # Each tenant's native time covers its whole trace.
        for name, report in reports.items():
            overhead = report.device.kernel_launch_overhead * report.slowdown
            expect = float(report.durations.sum()) + overhead * report.columns.n
            assert sched.native_times()[name] == pytest.approx(expect, rel=1e-9)

    def test_tenant_schedule_rejects_mixed_devices(self, store):
        reports = {"a": priced_report(store, "avmnist", device="2080ti"),
                   "b": priced_report(store, "avmnist", device="nano")}
        with pytest.raises(ValueError, match="devices"):
            tenant_schedule(reports)


class TestConcurrencyAgreement:
    """The acceptance criterion: the schedule-derived analysis reproduces
    the closed-form idle-resource numbers on every multi-modal workload."""

    FIELDS = ("straggler_ratio", "serial_encoder_time",
              "concurrent_encoder_time", "concurrency_speedup",
              "idle_resource_fraction", "idle_window_fraction",
              "idle_stream_share")

    @pytest.mark.parametrize("workload", list_workloads())
    def test_schedule_reproduces_analytic(self, store, workload):
        report = priced_report(store, workload)
        from_schedule = analyze_concurrency(report)
        closed_form = analytic_concurrency(report.modality_time())
        assert from_schedule.straggler == closed_form.straggler
        for mod, t in closed_form.modality_times.items():
            assert from_schedule.modality_times[mod] == pytest.approx(t, rel=1e-9)
        for name in self.FIELDS:
            assert getattr(from_schedule, name) == pytest.approx(
                getattr(closed_form, name), rel=1e-9), name

    def test_equal_share_schedule_backs_the_analysis(self, store):
        report = priced_report(store, "mujoco_push")
        sched = modality_schedule(report)
        m = len(sched.streams)
        assert all(w.share == pytest.approx(1.0 / m)
                   for w in sched.streams.values())
        analysis = analyze_concurrency(report)
        assert analysis.idle_resource_fraction == pytest.approx(
            sched.idle_resource_fraction())
