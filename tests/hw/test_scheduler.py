"""Batched-serving simulator."""

import pytest

from repro.hw.scheduler import batch_time_from_profile, simulate_serving
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload


def affine_batch_time(k: int) -> float:
    """50us fixed + 10us per task — the roofline model's typical shape."""
    return 50e-6 + 10e-6 * k


class TestClosedBatch:
    """All tasks queued at t=0 (the paper's Sec. 5.1 setting)."""

    def test_makespan_matches_hand_count(self):
        result = simulate_serving(affine_batch_time, batch_size=10, n_tasks=100)
        # 10 batches of 10: each 50us + 100us = 150us.
        assert result.makespan == pytest.approx(10 * 150e-6)
        assert result.server_utilization == pytest.approx(1.0)

    def test_larger_batches_raise_throughput(self):
        small = simulate_serving(affine_batch_time, batch_size=10, n_tasks=1000)
        large = simulate_serving(affine_batch_time, batch_size=100, n_tasks=1000)
        assert large.throughput > small.throughput
        assert large.makespan < small.makespan

    def test_sublinear_speedup(self):
        """10x batch never yields 10x throughput with fixed overhead."""
        b40 = simulate_serving(affine_batch_time, batch_size=40, n_tasks=10_000)
        b400 = simulate_serving(affine_batch_time, batch_size=400, n_tasks=10_000)
        assert b400.throughput / b40.throughput < 10.0

    def test_latency_percentiles_ordered(self):
        result = simulate_serving(affine_batch_time, batch_size=16, n_tasks=256)
        assert result.mean_latency > 0
        assert result.p50_latency <= result.p99_latency <= result.makespan


class TestOpenLoop:
    def test_poisson_arrivals_idle_the_server(self):
        # Arrivals far slower than service: utilization well below 1.
        result = simulate_serving(affine_batch_time, batch_size=8, n_tasks=200,
                                  arrival_rate=100.0, seed=1)
        assert result.server_utilization < 0.5
        assert result.mean_latency < 0.05

    def test_overload_queues_build(self):
        def slow(k):
            return 1e-3 + 1e-4 * k  # service slower than arrivals

        result = simulate_serving(slow, batch_size=4, n_tasks=300,
                                  arrival_rate=10_000.0, seed=1)
        assert result.server_utilization > 0.9
        assert result.p99_latency > result.p50_latency

    def test_deterministic_by_seed(self):
        a = simulate_serving(affine_batch_time, 8, 100, arrival_rate=500.0, seed=3)
        b = simulate_serving(affine_batch_time, 8, 100, arrival_rate=500.0, seed=3)
        assert a.mean_latency == b.mean_latency


class TestValidation:
    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            simulate_serving(affine_batch_time, 0, 10)
        with pytest.raises(ValueError):
            simulate_serving(affine_batch_time, 4, -1)
        with pytest.raises(ValueError):
            simulate_serving(affine_batch_time, 4, 10, arrival_rate=0.0)
        with pytest.raises(ValueError, match="positive duration"):
            simulate_serving(lambda k: 0.0, 4, 10)

    def test_zero_tasks_is_a_wellformed_empty_run(self):
        result = simulate_serving(affine_batch_time, 4, 0)
        assert result.n_tasks == 0
        assert result.makespan == 0.0
        assert result.throughput == 0.0


class TestProfileIntegration:
    def test_batch_time_from_profile_monotone(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        profiler = MMBenchProfiler("2080ti")
        batch_time = batch_time_from_profile(profiler, model, "2080ti")
        times = [batch_time(k) for k in (1, 8, 64, 256)]
        assert times == sorted(times)
        # Per-task cost falls with batch size (amortized overheads).
        assert times[-1] / 256 < times[0] / 1
