"""Layer-level tests: shapes, modes, gradient flow."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


@pytest.fixture
def x_img(rng):
    return Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32), requires_grad=True)


@pytest.fixture
def x_seq(rng):
    return Tensor(rng.standard_normal((2, 5, 16)).astype(np.float32), requires_grad=True)


def grads_flow(module: nn.Module) -> bool:
    return all(p.grad is not None and np.isfinite(p.grad).all() for p in module.parameters())


class TestLinear:
    def test_shape(self, rng):
        lin = nn.Linear(8, 4, rng=rng)
        out = lin(Tensor(np.zeros((3, 8), dtype=np.float32)))
        assert out.shape == (3, 4)

    def test_no_bias(self, rng):
        lin = nn.Linear(8, 4, bias=False, rng=rng)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_grad_flow(self, rng):
        lin = nn.Linear(8, 4, rng=rng)
        lin(Tensor(rng.standard_normal((3, 8)).astype(np.float32))).sum().backward()
        assert grads_flow(lin)

    def test_repr(self, rng):
        assert repr(nn.Linear(8, 4, rng=rng)) == "Linear(8, 4)"


class TestConv2d:
    def test_shape_and_output_spatial(self, rng, x_img):
        conv = nn.Conv2d(3, 6, 3, stride=2, padding=1, rng=rng)
        out = conv(x_img)
        assert out.shape == (2, 6, 4, 4)
        assert conv.output_spatial(8, 8) == (4, 4)

    def test_grad_flow(self, rng, x_img):
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        conv(x_img).sum().backward()
        assert grads_flow(conv)
        assert x_img.grad is not None

    def test_conv_block(self, rng, x_img):
        block = nn.ConvBlock(3, 8, rng=rng)
        out = block(x_img)
        assert out.shape == (2, 8, 8, 8)
        assert (out.data >= 0).all()  # ends in ReLU


class TestNorms:
    def test_batchnorm_train_vs_eval_differ(self, rng, x_img):
        bn = nn.BatchNorm2d(3)
        out_train = bn(x_img).data.copy()
        bn.eval()
        out_eval = bn(x_img).data
        assert not np.allclose(out_train, out_eval)

    def test_batchnorm_updates_running_stats(self, rng, x_img):
        bn = nn.BatchNorm2d(3)
        before = bn.running_mean.copy()
        bn(x_img)
        assert not np.allclose(before, bn.running_mean)

    def test_batchnorm1d_on_2d(self, rng):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(rng.standard_normal((8, 4)).astype(np.float32)))
        assert out.shape == (8, 4)

    def test_layernorm_shape(self, rng, x_seq):
        ln = nn.LayerNorm(16)
        assert ln(x_seq).shape == (2, 5, 16)


class TestPooling:
    def test_max_pool(self, x_img):
        assert nn.MaxPool2d(2)(x_img).shape == (2, 3, 4, 4)

    def test_avg_pool(self, x_img):
        assert nn.AvgPool2d(2)(x_img).shape == (2, 3, 4, 4)

    def test_global_avg_pool(self, x_img):
        assert nn.GlobalAvgPool2d()(x_img).shape == (2, 3)

    def test_flatten(self, x_img):
        assert nn.Flatten()(x_img).shape == (2, 3 * 8 * 8)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(10, 6, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(10, 6, rng=rng)
        with pytest.raises(IndexError, match="out of range"):
            emb(np.array([10]))
        with pytest.raises(IndexError, match="out of range"):
            emb(np.array([-1]))


class TestDropout:
    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_eval_identity(self, rng, x_seq):
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        assert drop(x_seq) is x_seq

    def test_train_zeroes_some(self, rng):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100), dtype=np.float32)))
        assert (out.data == 0).any()


class TestRecurrent:
    def test_lstm_shapes(self, rng, x_seq):
        lstm = nn.LSTM(16, 8, rng=rng)
        out, (h, c) = lstm(x_seq)
        assert out.shape == (2, 5, 8)
        assert h.shape == (2, 8)
        assert c.shape == (2, 8)

    def test_lstm_grad_flow(self, rng, x_seq):
        lstm = nn.LSTM(16, 8, rng=rng)
        _, (h, _) = lstm(x_seq)
        h.sum().backward()
        assert grads_flow(lstm)

    def test_gru_shapes(self, rng, x_seq):
        gru = nn.GRU(16, 8, rng=rng)
        out, h = gru(x_seq)
        assert out.shape == (2, 5, 8)
        assert h.shape == (2, 8)

    def test_gru_cell_step(self, rng):
        cell = nn.GRUCell(4, 6, rng=rng)
        h = cell(Tensor(np.zeros((3, 4), dtype=np.float32)),
                 Tensor(np.zeros((3, 6), dtype=np.float32)))
        assert h.shape == (3, 6)

    def test_gru_final_state_matches_last_output(self, rng, x_seq):
        gru = nn.GRU(16, 8, rng=rng)
        out, h = gru(x_seq)
        np.testing.assert_allclose(out.data[:, -1], h.data, rtol=1e-5)


class TestAttention:
    def test_self_attention_shape(self, rng, x_seq):
        attn = nn.MultiheadAttention(16, 4, rng=rng)
        assert attn(x_seq).shape == (2, 5, 16)

    def test_cross_attention_shape(self, rng, x_seq):
        attn = nn.MultiheadAttention(16, 4, rng=rng)
        ctx = Tensor(np.zeros((2, 9, 16), dtype=np.float32))
        assert attn(x_seq, ctx, ctx).shape == (2, 5, 16)

    def test_indivisible_heads_raise(self, rng):
        with pytest.raises(ValueError, match="not divisible"):
            nn.MultiheadAttention(10, 3, rng=rng)

    def test_encoder_layer_residual(self, rng, x_seq):
        layer = nn.TransformerEncoderLayer(16, 4, rng=rng)
        out = layer(x_seq)
        assert out.shape == x_seq.shape
        # Residual path: output should correlate with input.
        assert abs(np.corrcoef(out.data.ravel(), x_seq.data.ravel())[0, 1]) > 0.3

    def test_encoder_stack_and_maxlen(self, rng, x_seq):
        enc = nn.TransformerEncoder(16, 4, 2, max_len=5, rng=rng)
        assert enc(x_seq).shape == (2, 5, 16)
        too_long = Tensor(np.zeros((1, 6, 16), dtype=np.float32))
        with pytest.raises(ValueError, match="exceeds max_len"):
            enc(too_long)

    def test_cross_attention_layer(self, rng, x_seq):
        layer = nn.CrossAttentionLayer(16, 4, rng=rng)
        ctx = Tensor(np.zeros((2, 3, 16), dtype=np.float32))
        assert layer(x_seq, ctx).shape == (2, 5, 16)

    def test_attention_grad_flow(self, rng, x_seq):
        attn = nn.MultiheadAttention(16, 4, rng=rng)
        attn(x_seq).sum().backward()
        assert grads_flow(attn)
