"""Tensor mechanics: construction, autograd bookkeeping, broadcasting."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_wraps_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_converts_float64(self):
        t = Tensor(np.zeros(4, dtype=np.float64))
        assert t.dtype == np.float32

    def test_preserves_int_arrays(self):
        t = Tensor(np.array([1, 2], dtype=np.int64))
        assert t.dtype == np.int64

    def test_shape_size_nbytes(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.size == 6
        assert t.ndim == 2
        assert t.nbytes == 24
        assert len(t) == 2

    def test_repr_mentions_grad(self):
        t = Tensor(np.zeros(2), requires_grad=True)
        assert "requires_grad" in repr(t)

    def test_item_on_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        assert as_tensor(2.0).data == np.float32(2.0)


class TestAutogradBookkeeping:
    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError, match="does not require grad"):
            t.backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            t.backward()

    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x
        y.backward(np.ones(1))
        assert x.grad == pytest.approx([5.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward(np.ones(1))
        (x * 3.0).backward(np.ones(1))
        assert x.grad == pytest.approx([5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward(np.ones(1))
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x feeds two paths that rejoin; gradient must be summed once each.
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x * 4.0
        (a + b).backward(np.ones(1))
        assert x.grad == pytest.approx([6.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        d = (x * 2.0).detach()
        assert not d.requires_grad
        assert d._parents == ()

    def test_no_grad_builds_no_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestBroadcastGradients:
    def test_bias_broadcast_reduces(self):
        x = Tensor(np.ones((4, 3)), requires_grad=False)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert b.grad == pytest.approx(np.full(3, 4.0))

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3.0).sum().backward()
        assert x.grad == pytest.approx(np.full((2, 2), 3.0))

    def test_keepdim_axis_broadcast(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (2, 1)
        assert b.grad == pytest.approx(np.full((2, 1), 3.0))


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0], requires_grad=True)
        assert (1.0 + x).data == pytest.approx([3.0])
        assert (5.0 - x).data == pytest.approx([3.0])
        assert (3.0 * x).data == pytest.approx([6.0])
        assert (8.0 / x).data == pytest.approx([4.0])

    def test_neg_pow_matmul(self):
        x = Tensor([[1.0, 2.0]])
        w = Tensor([[1.0], [1.0]])
        np.testing.assert_allclose((-x).data, [[-1.0, -2.0]])
        np.testing.assert_allclose((x ** 2.0).data, [[1.0, 4.0]])
        np.testing.assert_allclose((x @ w).data, [[3.0]])

    def test_getitem(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        row = x[(1, slice(None))]
        assert row.data == pytest.approx([3.0, 4.0, 5.0])
        row.sum().backward()
        assert x.grad[1] == pytest.approx(np.ones(3))
        assert x.grad[0] == pytest.approx(np.zeros(3))

    def test_reshape_method(self):
        x = Tensor(np.zeros((2, 3)))
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.reshape((-1,)).shape == (6,)
