"""Module system: registration, traversal, modes, state dict."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.lin = nn.Linear(4, 3, rng=np.random.default_rng(0))
        self.w = Parameter(np.ones(2, dtype=np.float32))
        self.register_buffer("buf", np.zeros(2, dtype=np.float32))

    def forward(self, x):
        return self.lin(x)


class TestRegistration:
    def test_parameters_found(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert set(names) == {"w", "lin.weight", "lin.bias"}

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 2 + 4 * 3 + 3

    def test_parameter_bytes(self):
        toy = Toy()
        assert toy.parameter_bytes() == toy.num_parameters() * 4

    def test_named_modules(self):
        toy = Toy()
        names = [n for n, _ in toy.named_modules()]
        assert "" in names and "lin" in names

    def test_children(self):
        toy = Toy()
        assert len(list(toy.children())) == 1


class TestModes:
    def test_train_eval_recursive(self):
        toy = Toy()
        toy.eval()
        assert not toy.training
        assert not toy.lin.training
        toy.train()
        assert toy.lin.training

    def test_zero_grad(self):
        toy = Toy()
        out = toy(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert toy.lin.weight.grad is not None
        toy.zero_grad()
        assert toy.lin.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        a.w.data[:] = 7.0
        a.buf[:] = 3.0
        b.load_state_dict(a.state_dict())
        assert (b.w.data == 7.0).all()
        assert (b.buf == 3.0).all()

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"][:] = 99.0
        assert (toy.w.data != 99.0).all()

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["w"]
        with pytest.raises(KeyError, match="missing parameter"):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"] = np.zeros(5, dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            toy.load_state_dict(state)


class TestContainers:
    def test_sequential_chains(self):
        rng = np.random.default_rng(0)
        seq = Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        out = seq(Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)
        assert len(seq) == 3
        assert len(list(seq.parameters())) == 4

    def test_module_list(self):
        rng = np.random.default_rng(0)
        ml = ModuleList([nn.Linear(2, 2, rng=rng)])
        ml.append(nn.Linear(2, 2, rng=rng))
        assert len(ml) == 2
        assert ml[1] is list(ml)[1]
        assert len(list(Sequential(*ml).parameters())) == 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
