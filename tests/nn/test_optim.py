"""Optimizers: convergence on a quadratic bowl, state handling, clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.backend import meta_array
from repro.nn.module import Parameter
from repro.nn.optim import Adam, AdamW, SGD, clip_grad_norm, make_optimizer
from repro.nn.tensor import Tensor


def quadratic_steps(optimizer_cls, steps=200, **kwargs):
    """Minimize ||w - target||^2; return the final distance."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    w = Parameter(np.zeros(3, dtype=np.float32))
    opt = optimizer_cls([w], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        diff = w - Tensor(target)
        (diff * diff).sum().backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestSGD:
    def test_converges(self):
        assert quadratic_steps(SGD, lr=0.1) < 1e-3

    def test_momentum_converges(self):
        assert quadratic_steps(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_weight_decay_shrinks(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        (w * 0.0).sum().backward()  # zero data gradient
        w.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert (w.data < 1.0).all()

    def test_skips_params_without_grad(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        SGD([w], lr=0.1).step()  # no grad: must not crash or move
        assert (w.data == 1.0).all()

    def test_empty_params_raise(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        assert quadratic_steps(Adam, lr=0.05) < 1e-2

    def test_bias_correction_first_step_magnitude(self):
        w = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([w], lr=0.1)
        w.grad = np.ones(1, dtype=np.float32)
        opt.step()
        # With bias correction the first step is ~lr in magnitude.
        assert abs(w.data[0] + 0.1) < 1e-3

    def test_zero_grad_clears(self):
        w = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([w])
        w.grad = np.ones(1, dtype=np.float32)
        opt.zero_grad()
        assert w.grad is None

    def test_meta_grads_skip_numeric_update(self):
        w = Parameter(np.ones(3, dtype=np.float32))
        opt = Adam([w], lr=0.5)
        w.grad = meta_array((3,))
        opt.step()  # shape-only gradient: no numbers to apply
        assert (w.data == 1.0).all()


class TestAdamW:
    def test_converges(self):
        assert quadratic_steps(AdamW, lr=0.05, weight_decay=0.0) < 1e-2

    def test_decay_is_decoupled_from_gradient_scale(self):
        """L2 Adam folds decay into the adaptive moments, so its effective
        decay shrinks under large gradients; decoupled AdamW does not."""
        def first_step(cls, grad_scale):
            w = Parameter(np.full(1, 4.0, dtype=np.float32))
            opt = cls([w], lr=0.1, weight_decay=0.1)
            w.grad = np.zeros(1, dtype=np.float32)
            # A pure-decay step: the data gradient is zero.
            opt.step()
            return float(4.0 - w.data[0])

        # With zero gradient, AdamW still shrinks by exactly lr*wd*w...
        adamw_shrink = first_step(AdamW, 0.0)
        assert adamw_shrink == pytest.approx(0.1 * 0.1 * 4.0, rel=1e-3)
        # ...while L2 Adam normalizes the decay through sqrt(v): the step
        # is ~lr regardless of the decay magnitude (sign-only).
        adam_shrink = first_step(Adam, 0.0)
        assert adam_shrink == pytest.approx(0.1, rel=1e-2)

    def test_decoupled_flag_equivalent(self):
        wa = Parameter(np.full(2, 3.0, dtype=np.float32))
        wb = Parameter(np.full(2, 3.0, dtype=np.float32))
        a = AdamW([wa], lr=0.1, weight_decay=0.05)
        b = Adam([wb], lr=0.1, weight_decay=0.05, decoupled=True)
        for w in (wa, wb):
            w.grad = np.ones(2, dtype=np.float32)
        a.step()
        b.step()
        np.testing.assert_allclose(wa.data, wb.data)

    def test_make_optimizer_names(self):
        w = [Parameter(np.zeros(1, dtype=np.float32))]
        assert isinstance(make_optimizer("adamw", w), AdamW)
        assert isinstance(make_optimizer("sgd_momentum", w), SGD)
        with pytest.raises(KeyError, match="unknown optimizer"):
            make_optimizer("lamb", w)


class TestClipGradNorm:
    def test_clips_large(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        w.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([w], 1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-4)

    def test_leaves_small(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        w.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([w], 10.0)
        assert (w.grad == np.float32(0.1)).all()

    def test_nonfinite_norm_leaves_grads_untouched(self):
        """Regression: an inf gradient used to scale every grad by
        max_norm/inf = 0, silently zeroing the whole update."""
        w1 = Parameter(np.zeros(2, dtype=np.float32))
        w2 = Parameter(np.zeros(2, dtype=np.float32))
        w1.grad = np.array([np.inf, 1.0], dtype=np.float32)
        w2.grad = np.full(2, 3.0, dtype=np.float32)
        norm = clip_grad_norm([w1, w2], 1.0)
        assert np.isinf(norm)
        assert (w2.grad == np.float32(3.0)).all()  # not zeroed

    def test_nan_norm_reported(self):
        w = Parameter(np.zeros(2, dtype=np.float32))
        w.grad = np.array([np.nan, 1.0], dtype=np.float32)
        assert np.isnan(clip_grad_norm([w], 1.0))
        assert w.grad[1] == np.float32(1.0)

    def test_meta_grads_return_nan_without_scaling(self):
        w = Parameter(np.zeros(3, dtype=np.float32))
        w.grad = meta_array((3,))
        assert np.isnan(clip_grad_norm([w], 1.0))

    def test_no_grads_returns_zero(self):
        w = Parameter(np.zeros(3, dtype=np.float32))
        assert clip_grad_norm([w], 1.0) == 0.0

    def test_training_reduces_loss_end_to_end(self, rng):
        model = nn.Sequential(nn.Linear(4, 16, rng=rng), nn.Tanh(), nn.Linear(16, 1, rng=rng))
        opt = Adam(model.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((32, 4)).astype(np.float32))
        y = Tensor((x.data[:, :1] * 2.0).astype(np.float32))
        first = None
        for _ in range(100):
            opt.zero_grad()
            diff = model(x) - y
            loss = (diff * diff).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.2
