"""Optimizers: convergence on a quadratic bowl, state handling, clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import Adam, SGD, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_steps(optimizer_cls, steps=200, **kwargs):
    """Minimize ||w - target||^2; return the final distance."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    w = Parameter(np.zeros(3, dtype=np.float32))
    opt = optimizer_cls([w], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        diff = w - Tensor(target)
        (diff * diff).sum().backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestSGD:
    def test_converges(self):
        assert quadratic_steps(SGD, lr=0.1) < 1e-3

    def test_momentum_converges(self):
        assert quadratic_steps(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_weight_decay_shrinks(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        (w * 0.0).sum().backward()  # zero data gradient
        w.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert (w.data < 1.0).all()

    def test_skips_params_without_grad(self):
        w = Parameter(np.ones(2, dtype=np.float32))
        SGD([w], lr=0.1).step()  # no grad: must not crash or move
        assert (w.data == 1.0).all()

    def test_empty_params_raise(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        assert quadratic_steps(Adam, lr=0.05) < 1e-2

    def test_bias_correction_first_step_magnitude(self):
        w = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([w], lr=0.1)
        w.grad = np.ones(1, dtype=np.float32)
        opt.step()
        # With bias correction the first step is ~lr in magnitude.
        assert abs(w.data[0] + 0.1) < 1e-3

    def test_zero_grad_clears(self):
        w = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam([w])
        w.grad = np.ones(1, dtype=np.float32)
        opt.zero_grad()
        assert w.grad is None


class TestClipGradNorm:
    def test_clips_large(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        w.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([w], 1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-4)

    def test_leaves_small(self):
        w = Parameter(np.zeros(4, dtype=np.float32))
        w.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([w], 10.0)
        assert (w.grad == np.float32(0.1)).all()

    def test_training_reduces_loss_end_to_end(self, rng):
        model = nn.Sequential(nn.Linear(4, 16, rng=rng), nn.Tanh(), nn.Linear(16, 1, rng=rng))
        opt = Adam(model.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((32, 4)).astype(np.float32))
        y = Tensor((x.data[:, :1] * 2.0).astype(np.float32))
        first = None
        for _ in range(100):
            opt.zero_grad()
            diff = model(x) - y
            loss = (diff * diff).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.2
