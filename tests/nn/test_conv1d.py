"""Conv1d: values, gradients, shapes."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import numeric_gradient


class TestConv1dForward:
    def test_matches_direct_computation(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2, 3)).astype(np.float32))
        out = F.conv1d(x, w, None)
        assert out.shape == (1, 3, 4)
        expected = (x.data[0, :, 1:4] * w.data[2]).sum()
        assert out.data[0, 2, 1] == pytest.approx(expected, rel=1e-4)

    def test_stride_and_padding_shapes(self, rng):
        x = Tensor(rng.standard_normal((2, 4, 16)).astype(np.float32))
        w = Tensor(rng.standard_normal((8, 4, 5)).astype(np.float32))
        out = F.conv1d(x, w, None, stride=2, padding=2)
        assert out.shape == (2, 8, 8)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 8), dtype=np.float32))
        w = Tensor(np.zeros((1, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv1d(x, w, None)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 5), dtype=np.float32))
        w = Tensor(np.zeros((2, 1, 3), dtype=np.float32))
        b = Tensor(np.array([1.0, -2.0], dtype=np.float32))
        out = F.conv1d(x, w, b, padding=1)
        np.testing.assert_allclose(out.data[0, 0], np.ones(5))
        np.testing.assert_allclose(out.data[0, 1], -2 * np.ones(5))


class TestConv1dGradients:
    def test_gradients_match_numeric(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 10)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)

        def run():
            return F.conv1d(x, w, b, stride=2, padding=1)

        out = run()
        out.backward(np.ones_like(out.data))
        for p in (x, w, b):
            analytic = p.grad.copy()
            num = numeric_gradient(lambda: float(run().data.sum()), p.data)
            np.testing.assert_allclose(analytic, num, rtol=2e-2, atol=2e-2)


class TestConv1dLayer:
    def test_layer_shapes_and_repr(self, rng):
        layer = nn.Conv1d(6, 12, 5, stride=2, padding=2, rng=rng)
        out = layer(Tensor(rng.standard_normal((3, 6, 32)).astype(np.float32)))
        assert out.shape == (3, 12, 16)
        assert "Conv1d(6, 12" in repr(layer)

    def test_no_bias(self, rng):
        layer = nn.Conv1d(2, 4, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_temporal_conv_encoder(self, rng):
        from repro.workloads.encoders import TemporalConvEncoder

        enc = TemporalConvEncoder(6, 32, rng)
        out = enc(Tensor(rng.standard_normal((2, 32, 6)).astype(np.float32)))
        assert out.shape == (2, 32)
        out.sum().backward()
        assert enc.conv1.weight.grad is not None

    def test_conv1d_emits_conv_kernel(self, rng):
        from repro.trace.events import KernelCategory
        from repro.trace.tracer import Tracer

        layer = nn.Conv1d(2, 4, 3, rng=rng)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            layer(Tensor(rng.standard_normal((1, 2, 8)).astype(np.float32)))
        trace = tracer.finish()
        assert any(k.category == KernelCategory.CONV for k in trace.kernels)
