"""Losses and metrics: reference values and gradient sanity."""

import numpy as np
import pytest

from repro.nn import losses
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10), dtype=np.float32), requires_grad=True)
        loss = losses.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-4)

    def test_confident_correct_is_small(self):
        logits = np.full((2, 3), -10.0, dtype=np.float32)
        logits[:, 1] = 10.0
        loss = losses.cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() < 1e-3

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), dtype=np.float32), requires_grad=True)
        losses.cross_entropy(logits, np.array([0])).backward()
        # Gradient should push class-0 logit up (negative grad) and others down.
        assert logits.grad[0, 0] < 0
        assert logits.grad[0, 1] > 0


class TestBCE:
    def test_matches_reference(self):
        x = np.array([[0.5, -1.0]], dtype=np.float32)
        t = np.array([[1, 0]])
        loss = losses.binary_cross_entropy_with_logits(Tensor(x), t)
        ref = -(np.log(1 / (1 + np.exp(-0.5))) + np.log(1 - 1 / (1 + np.exp(1.0)))) / 2
        assert loss.item() == pytest.approx(ref, rel=1e-4)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[50.0, -50.0]], dtype=np.float32), requires_grad=True)
        loss = losses.binary_cross_entropy_with_logits(x, np.array([[1, 0]]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(x.grad).all()


class TestRegressionLosses:
    def test_mse(self):
        pred = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        assert losses.mse_loss(pred, np.array([[0.0, 0.0]])).item() == pytest.approx(2.5)

    def test_l1(self):
        pred = Tensor(np.array([[1.0, -2.0]], dtype=np.float32))
        assert losses.l1_loss(pred, np.array([[0.0, 0.0]])).item() == pytest.approx(1.5)

    def test_abs(self):
        x = Tensor(np.array([-3.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose(losses.abs_(x).data, [3.0, 4.0])


class TestSegmentationLosses:
    def test_dice_perfect(self):
        target = np.ones((1, 1, 4, 4), dtype=np.int64)
        logits = Tensor(np.full((1, 1, 4, 4), 20.0, dtype=np.float32))
        assert losses.dice_loss(logits, target).item() == pytest.approx(0.0, abs=1e-2)

    def test_dice_worst(self):
        target = np.ones((1, 1, 4, 4), dtype=np.int64)
        logits = Tensor(np.full((1, 1, 4, 4), -20.0, dtype=np.float32))
        assert losses.dice_loss(logits, target).item() > 0.8

    def test_segmentation_loss_combines(self):
        target = np.ones((1, 1, 2, 2), dtype=np.int64)
        logits = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        loss = losses.segmentation_loss(logits, target)
        assert loss.item() > 0
        loss.backward()
        assert np.isfinite(logits.grad).all()


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert losses.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_f1_micro_perfect(self):
        logits = np.array([[5.0, -5.0], [-5.0, 5.0]])
        targets = np.array([[1, 0], [0, 1]])
        assert losses.f1_micro(logits, targets) == pytest.approx(1.0)

    def test_f1_micro_all_negative_predictions(self):
        logits = np.full((3, 4), -1.0)
        targets = np.ones((3, 4), dtype=np.int64)
        assert losses.f1_micro(logits, targets) == 0.0

    def test_dice_score_range(self, rng):
        logits = rng.standard_normal((2, 1, 8, 8))
        targets = (rng.random((2, 1, 8, 8)) < 0.5).astype(np.int64)
        assert 0.0 <= losses.dice_score(logits, targets) <= 1.0

    def test_mse_metric_accepts_tensor(self):
        pred = Tensor(np.array([1.0, 3.0], dtype=np.float32))
        assert losses.mse_metric(pred, np.array([0.0, 0.0])) == pytest.approx(5.0)
