"""Numeric gradient checks and forward correctness for every op."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import numeric_gradient


def check_gradients(build_output, params: list[Tensor], tol: float = 2e-2):
    """Compare autograd gradients against central differences."""
    out = build_output()
    out.backward(np.ones_like(out.data))
    for p in params:
        analytic = p.grad.copy()

        def scalar():
            return float(build_output().data.sum())

        numeric = numeric_gradient(scalar, p.data)
        np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


@pytest.fixture
def x2(rng):
    return Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)


@pytest.fixture
def y2(rng):
    return Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)


class TestElementwiseGrads:
    def test_add(self, x2, y2):
        check_gradients(lambda: F.add(x2, y2), [x2, y2])

    def test_sub(self, x2, y2):
        check_gradients(lambda: F.sub(x2, y2), [x2, y2])

    def test_mul(self, x2, y2):
        check_gradients(lambda: F.mul(x2, y2), [x2, y2])

    def test_div(self, x2, y2, rng):
        denom = Tensor(rng.uniform(1.0, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.div(x2, denom), [x2, denom])

    def test_exp(self, x2):
        check_gradients(lambda: F.exp(x2), [x2])

    def test_log(self, rng):
        pos = Tensor(rng.uniform(0.5, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.log(pos), [pos])

    def test_sqrt(self, rng):
        pos = Tensor(rng.uniform(0.5, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.sqrt(pos), [pos])

    def test_pow(self, rng):
        pos = Tensor(rng.uniform(0.5, 2.0, (3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.pow_(pos, 3.0), [pos])


class TestActivationGrads:
    def test_relu_grad_masks_negatives(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        F.relu(x).sum().backward()
        assert x.grad == pytest.approx([0.0, 1.0])

    def test_leaky_relu(self, x2):
        check_gradients(lambda: F.leaky_relu(x2, 0.1), [x2])

    def test_sigmoid(self, x2):
        check_gradients(lambda: F.sigmoid(x2), [x2])

    def test_tanh(self, x2):
        check_gradients(lambda: F.tanh(x2), [x2])

    def test_gelu(self, x2):
        check_gradients(lambda: F.gelu(x2), [x2])

    def test_sigmoid_range(self, rng):
        x = Tensor(rng.standard_normal(100).astype(np.float32) * 5)
        s = F.sigmoid(x).data
        assert (s > 0).all() and (s < 1).all()


class TestReductionGrads:
    def test_sum_all(self, x2):
        check_gradients(lambda: F.sum_(x2), [x2])

    def test_sum_axis(self, x2):
        check_gradients(lambda: F.sum_(x2, axis=1), [x2])

    def test_sum_keepdims(self, x2):
        check_gradients(lambda: F.sum_(x2, axis=0, keepdims=True), [x2])

    def test_mean(self, x2):
        check_gradients(lambda: F.mean(x2, axis=1), [x2])

    def test_mean_tuple_axis(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 5)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.mean(x, axis=(2, 3)), [x])

    def test_max(self, x2):
        check_gradients(lambda: F.max_(x2, axis=1), [x2])

    def test_softmax_rows_sum_to_one(self, x2):
        s = F.softmax(x2, axis=-1).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_softmax_grad(self, x2):
        check_gradients(lambda: F.softmax(x2, axis=-1), [x2])

    def test_log_softmax_matches_log_of_softmax(self, x2):
        np.testing.assert_allclose(
            F.log_softmax(x2, axis=-1).data,
            np.log(F.softmax(x2, axis=-1).data),
            rtol=1e-4, atol=1e-5,
        )

    def test_log_softmax_grad(self, x2):
        check_gradients(lambda: F.log_softmax(x2, axis=-1), [x2])


class TestLinearAlgebraGrads:
    def test_matmul(self, rng):
        a = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.matmul(a, b), [a, b])

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 2)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.matmul(a, b), [a, b])

    def test_linear_matches_manual(self, rng):
        x = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        b = Tensor(rng.standard_normal(4).astype(np.float32))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data, rtol=1e-5)

    def test_outer_product_values(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        b = Tensor(np.array([[3.0, 4.0, 5.0]]))
        out = F.outer_product(a, b)
        assert out.shape == (1, 2, 3)
        np.testing.assert_allclose(out.data[0], np.outer([1, 2], [3, 4, 5]))

    def test_outer_product_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.outer_product(a, b), [a, b])


class TestShapeOps:
    def test_reshape_grad(self, x2):
        check_gradients(lambda: F.reshape(x2, (4, 3)), [x2])

    def test_transpose_grad(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.transpose(x, (2, 0, 1)), [x])

    def test_concat_values_and_grad(self, rng):
        a = Tensor(rng.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        check_gradients(lambda: F.concat([a, b], axis=1), [a, b])

    def test_stack(self, rng):
        a = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)).astype(np.float32), requires_grad=True)
        out = F.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda: F.stack([a, b], axis=1), [a, b])

    def test_pad2d(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3)).astype(np.float32), requires_grad=True)
        out = F.pad2d(x, 2)
        assert out.shape == (1, 1, 7, 7)
        check_gradients(lambda: F.pad2d(x, 2), [x])

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert F.pad2d(x, 0) is x

    def test_embedding_grad_scatters(self):
        w = Tensor(np.eye(4, dtype=np.float32), requires_grad=True)
        idx = np.array([[0, 2, 2]])
        out = F.embedding(w, idx)
        assert out.shape == (1, 3, 4)
        out.sum().backward()
        # Row 2 was gathered twice: its gradient is 2 * ones(4).
        np.testing.assert_allclose(w.grad[2], np.full(4, 2.0))
        np.testing.assert_allclose(w.grad[0], np.ones(4))
        np.testing.assert_allclose(w.grad[1], np.zeros(4))

    def test_upsample_nearest(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 3, 3)).astype(np.float32), requires_grad=True)
        out = F.upsample_nearest2d(x, 2)
        assert out.shape == (1, 2, 6, 6)
        check_gradients(lambda: F.upsample_nearest2d(x, 2), [x])


class TestConvPool:
    def test_conv2d_matches_direct(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, None, stride=1, padding=0)
        assert out.shape == (1, 3, 3, 3)
        # Direct convolution at one output location.
        patch = x.data[0, :, 1:4, 1:4]
        expected = (patch * w.data[1]).sum()
        assert out.data[0, 1, 1, 1] == pytest.approx(expected, rel=1e-4)

    def test_conv2d_stride_padding_shapes(self, rng):
        x = Tensor(rng.standard_normal((2, 1, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 1, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, None, stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4)

    def test_conv2d_channel_mismatch_raises(self, rng):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((1, 3, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w, None)

    def test_conv2d_grads(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(3).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.conv2d(x, w, b, stride=1, padding=1), [x, w, b])

    def test_conv2d_strided_grads(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 1, 3, 3)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.conv2d(x, w, None, stride=2, padding=1), [x, w])

    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_goes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert x.grad[0, 0, 1, 1] == 1.0
        assert x.grad[0, 0, 0, 0] == 0.0

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, np.ones((1, 1, 2, 2)))

    def test_avg_pool_grad(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.avg_pool2d(x, 2), [x])


class TestNormGrads:
    def test_layer_norm_normalizes(self, rng):
        x = Tensor(rng.standard_normal((4, 8)).astype(np.float32) * 3 + 1)
        g = Tensor(np.ones(8, dtype=np.float32))
        b = Tensor(np.zeros(8, dtype=np.float32))
        out = F.layer_norm(x, g, b).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_layer_norm_grads(self, rng):
        x = Tensor(rng.standard_normal((3, 6)).astype(np.float32), requires_grad=True)
        g = Tensor(rng.uniform(0.5, 1.5, 6).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(6).astype(np.float32), requires_grad=True)
        check_gradients(lambda: F.layer_norm(x, g, b), [x, g, b], tol=3e-2)

    def test_batch_norm_training_normalizes(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 4, 4)).astype(np.float32) * 2 + 5)
        g = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32))
        rm = np.zeros(3, dtype=np.float32)
        rv = np.ones(3, dtype=np.float32)
        out = F.batch_norm(x, g, b, rm, rv, training=True).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4)
        # Running stats moved toward the batch stats.
        assert (rm > 0).all()

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        g = Tensor(np.ones(2, dtype=np.float32))
        b = Tensor(np.zeros(2, dtype=np.float32))
        rm = np.full(2, 1.0, dtype=np.float32)
        rv = np.full(2, 4.0, dtype=np.float32)
        out = F.batch_norm(x, g, b, rm, rv, training=False).data
        expected = (x.data - 1.0) / np.sqrt(4.0 + 1e-5)
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_batch_norm_grads(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32), requires_grad=True)
        g = Tensor(rng.uniform(0.5, 1.5, 2).astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(2).astype(np.float32), requires_grad=True)
        rm = np.zeros(2, dtype=np.float32)
        rv = np.ones(2, dtype=np.float32)

        def run():
            # Fresh running stats each probe so the forward is deterministic.
            return F.batch_norm(x, g, b, rm.copy(), rv.copy(), training=True)

        check_gradients(run, [x, g, b], tol=3e-2)


class TestDropoutAndGLU:
    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.standard_normal((5, 5)).astype(np.float32))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_glu_values(self):
        a = Tensor(np.array([2.0]))
        b = Tensor(np.array([0.0]))
        assert F.glu(a, b).data == pytest.approx([1.0])  # sigmoid(0) = 0.5
