"""The traced training path: pass taxonomy, store keys, cross-checks.

The tentpole invariants:

* backward/optimizer kernels are *traced* (emitted by the autodiff
  closures and the optimizer), not synthesized;
* the traced full-step FLOPs land in the [2, 4]x-of-forward regime the
  classic accounting predicts, on every registry workload;
* the store's pass-aware training keys never collide with inference keys;
* the demoted synthetic heuristic stays available as a cross-check and
  its loss_reduce kernel no longer prices to zero on head-less traces.
"""

import numpy as np
import pytest

from repro.core.analysis.training import (
    traced_vs_synthetic,
    training_batch_sweep,
    training_step_analysis,
)
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.training import (
    synthetic_training_trace,
    trace_training_step,
    traced_training_flops_ratio,
    traced_training_step,
    training_memory_factor,
    training_trace,
)
from repro.trace.events import PASSES
from repro.trace.store import TraceStore
from repro.workloads.registry import get_workload, list_workloads


@pytest.fixture(scope="module")
def store():
    return TraceStore()


@pytest.fixture(scope="module")
def avmnist_step(store):
    return traced_training_step("avmnist", batch_size=4, backend="meta",
                                store=store)


class TestTracedStep:
    def test_all_four_passes_present(self, avmnist_step):
        assert avmnist_step.trace.passes() == list(PASSES)

    def test_backward_kernels_are_traced_per_op(self, avmnist_step):
        """Backward kernels come from the closures (op-specific names),
        not from the synthetic 2x twin generator."""
        bwd = avmnist_step.trace.kernels_in_pass("backward")
        assert len(bwd) > 10
        names = {k.name for k in bwd}
        # Op-specific split gradients only the traced path produces:
        assert "gemm_bwd_da" in names or "gemm_bwd_db" in names
        assert any(n.startswith("conv2d_bwd") for n in names)

    def test_backward_inherits_stage_and_modality(self, avmnist_step):
        bwd = avmnist_step.trace.kernels_in_pass("backward")
        stages = {k.stage for k in bwd}
        assert "encoder" in stages and "head" in stages
        assert {k.modality for k in bwd if k.stage == "encoder"} >= {"image", "audio"}

    def test_optimizer_kernels_per_parameter(self, avmnist_step):
        opt = avmnist_step.trace.kernels_in_pass("optimizer")
        assert opt and all(k.name == "adam_update" for k in opt)
        assert all(k.stage == "optimizer" for k in opt)

    def test_loss_kernels_tagged(self, avmnist_step):
        loss = avmnist_step.trace.kernels_in_pass("loss")
        assert loss and all(k.stage == "head" for k in loss)

    @pytest.mark.parametrize("workload", list_workloads())
    def test_ratio_within_accounting_regime(self, workload, store):
        """Acceptance: traced training FLOPs within [2, 4]x of forward on
        all nine workloads."""
        stored = traced_training_step(workload, batch_size=2, backend="meta",
                                      store=store)
        assert 2.0 < traced_training_flops_ratio(stored.trace) < 4.0

    def test_eager_capture_matches_meta(self, store, avmnist_step):
        eager = traced_training_step("avmnist", batch_size=4, backend="eager",
                                     store=store)
        cols_e = eager.trace.columns()
        cols_m = avmnist_step.trace.columns()
        assert cols_e.n == cols_m.n
        np.testing.assert_array_equal(cols_e.pass_codes, cols_m.pass_codes)
        np.testing.assert_allclose(cols_e.flops, cols_m.flops)

    def test_optimizer_choice_changes_update_kernels(self, store):
        adam = traced_training_step("avmnist", batch_size=2, backend="meta",
                                    optimizer="adam", store=store)
        sgd = traced_training_step("avmnist", batch_size=2, backend="meta",
                                   optimizer="sgd", store=store)
        adam_opt = sum(k.flops for k in adam.trace.kernels_in_pass("optimizer"))
        sgd_opt = sum(k.flops for k in sgd.trace.kernels_in_pass("optimizer"))
        assert adam_opt > sgd_opt > 0

    def test_unknown_optimizer_rejected(self):
        model = get_workload("avmnist").build(seed=0)
        with pytest.raises(KeyError, match="unknown optimizer"):
            trace_training_step(model, batch_size=2, optimizer="lamb")


class TestStoreKeys:
    def test_training_key_disjoint_from_inference(self, store):
        k_inf = store.make_key("avmnist", batch_size=4)
        k_train = store.make_key("avmnist", batch_size=4, mode="train:adam")
        assert k_inf.digest() != k_train.digest()

    def test_warm_training_hit_skips_capture(self, store):
        store.reset_stats()
        traced_training_step("avmnist", batch_size=4, backend="meta", store=store)
        captures = store.stats["captures"]
        traced_training_step("avmnist", batch_size=4, backend="meta", store=store)
        assert store.stats["captures"] == captures
        assert store.stats["hits"] >= 1

    def test_training_capture_does_not_poison_inference_model(self, store):
        """Training mutates parameters; the memoized inference model must
        keep producing the seed-deterministic trace."""
        traced_training_step("avmnist", batch_size=3, seed=7, backend="eager",
                             store=store)
        first = store.get_or_capture("avmnist", batch_size=3, seed=7,
                                     backend="eager")
        fresh = TraceStore().get_or_capture("avmnist", batch_size=3, seed=7,
                                            backend="eager")
        np.testing.assert_allclose(first.trace.columns().flops,
                                   fresh.trace.columns().flops)


class TestAnalysis:
    @pytest.fixture(scope="class")
    def breakdown(self, store):
        return training_step_analysis(workloads=["avmnist"], batch_size=4,
                                      store=store)["avmnist"]

    def test_pass_times_cover_step(self, breakdown):
        assert set(breakdown.pass_time) == set(PASSES)
        assert breakdown.pass_time["backward"] > breakdown.pass_time["forward"]
        assert breakdown.pass_time["optimizer"] > 0

    def test_pass_stage_grid(self, breakdown):
        grid = breakdown.pass_stage_time
        assert grid["forward"].keys() >= {"encoder", "fusion", "head"}
        assert grid["backward"].keys() >= {"encoder", "fusion", "head"}
        assert list(grid["optimizer"]) == ["optimizer"]

    def test_modality_pass_grid(self, breakdown):
        per_mod = breakdown.modality_pass_time
        assert set(per_mod) == {"image", "audio"}
        for passes in per_mod.values():
            assert passes["backward"] > passes["forward"] > 0

    def test_memory_factor_scales_with_optimizer_state(self):
        assert training_memory_factor("adam") > training_memory_factor("sgd")
        with pytest.raises(KeyError, match="unknown optimizer"):
            training_memory_factor("lamb")

    def test_batch_sweep_one_pass_pricing(self, store):
        grid = training_batch_sweep("avmnist", batches=(1, 8),
                                    devices=("2080ti", "nano"), store=store)
        assert set(grid) == {(1, "2080ti"), (1, "nano"), (8, "2080ti"), (8, "nano")}
        # More work per step at the larger batch, slower on the edge board.
        assert grid[(8, "2080ti")].total_time > grid[(1, "2080ti")].total_time
        assert grid[(8, "nano")].total_time > grid[(8, "2080ti")].total_time

    def test_traced_vs_synthetic_agree(self, store):
        check = traced_vs_synthetic("avmnist", batch_size=4, store=store)
        assert 2.0 < check.traced_ratio < 4.0
        assert 2.0 < check.synthetic_ratio < 4.0
        assert 0.5 < check.agreement < 2.0


class TestSyntheticCrossCheck:
    def test_alias_preserved(self):
        assert training_trace is synthetic_training_trace

    def test_loss_reduce_headless_fallback(self):
        """Regression: a trace with no head-stage kernels used to price
        the loss_reduce kernel to zero FLOPs."""
        from repro.trace.events import KernelCategory, KernelEvent
        from repro.trace.tracer import Trace

        kernels = [
            KernelEvent(name="gemm", category=KernelCategory.GEMM, flops=1e6,
                        bytes_read=4e4, bytes_written=2e4, threads=256,
                        stage="encoder"),
            KernelEvent(name="relu", category=KernelCategory.RELU, flops=5e3,
                        bytes_read=2e4, bytes_written=1.6e4, threads=256,
                        stage="encoder"),
        ]
        train = synthetic_training_trace(Trace(kernels=kernels), param_bytes=4e5)
        loss = next(k for k in train.kernels if k.name == "loss_reduce")
        # Falls back to the final kernel's output (the tensor the loss reads).
        assert loss.flops == pytest.approx(1.6e4 / 4.0)
        assert loss.bytes_read == pytest.approx(1.6e4)

    def test_loss_reduce_uses_head_output_when_present(self):
        from repro.data.synthetic import random_batch

        model = get_workload("avmnist").build(seed=0)
        trace = MMBenchProfiler().capture(
            model, random_batch(model.shapes, 2, seed=0))
        head_out = max(k.bytes_written for k in trace.kernels
                       if k.stage == "head")
        train = synthetic_training_trace(trace, model.parameter_bytes())
        loss = next(k for k in train.kernels if k.name == "loss_reduce")
        assert loss.flops == pytest.approx(head_out / 4.0)
        assert loss.flops > 0
