"""FLOP counting and report rendering."""

import pytest

from repro.data.synthetic import random_batch
from repro.profiling.flops import count_flops, count_parameters, flops_per_sample
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import (
    format_bytes,
    format_seconds,
    format_table,
    profile_summary,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def avmnist_model():
    return get_workload("avmnist").build(seed=0)


@pytest.fixture(scope="module")
def avmnist_batch():
    return random_batch(get_workload("avmnist").shapes, 4, seed=0)


class TestFlops:
    def test_parameters_breakdown(self, avmnist_model):
        counts = count_parameters(avmnist_model)
        assert counts["total"] == avmnist_model.num_parameters()
        assert counts["encoder_image"] > 0
        assert counts["fusion"] > 0
        assert counts["head"] > 0
        submodule_sum = sum(v for k, v in counts.items() if k != "total")
        assert submodule_sum == counts["total"]

    def test_flops_per_stage(self, avmnist_model, avmnist_batch):
        flops = count_flops(avmnist_model, avmnist_batch)
        assert flops["total"] > 0
        assert flops["encoder"] > flops["head"]
        stage_sum = sum(v for k, v in flops.items() if k != "total")
        assert stage_sum == pytest.approx(flops["total"])

    def test_flops_scale_with_batch(self, avmnist_model):
        shapes = get_workload("avmnist").shapes
        f2 = count_flops(avmnist_model, random_batch(shapes, 2, seed=0))["total"]
        f4 = count_flops(avmnist_model, random_batch(shapes, 4, seed=0))["total"]
        assert f4 == pytest.approx(2 * f2, rel=0.01)

    def test_flops_per_sample(self, avmnist_model, avmnist_batch):
        per = flops_per_sample(avmnist_model, avmnist_batch)
        assert per == pytest.approx(count_flops(avmnist_model, avmnist_batch)["total"] / 4)


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bbb"], [[1, 2.5], ["xx", 3e-7]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_seconds(self):
        assert format_seconds(2.0) == "2.000 s"
        assert format_seconds(2e-3) == "2.000 ms"
        assert format_seconds(2e-6) == "2.0 us"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**3) == "3.0 GB"

    def test_profile_summary_sections(self, avmnist_model, avmnist_batch):
        result = MMBenchProfiler("2080ti").profile(avmnist_model, avmnist_batch)
        text = profile_summary(result)
        for section in ("[algorithm]", "[system]", "[architecture]"):
            assert section in text
        assert "stage times" in text
