"""The three-level profiling pipeline."""

import numpy as np
import pytest

from repro.data.synthetic import random_batch
from repro.hw.device import JETSON_NANO, RTX_2080TI
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def profile():
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 4, seed=0)
    return MMBenchProfiler("2080ti").profile(model, batch)


class TestProfileResult:
    def test_identity(self, profile):
        assert profile.model_name == "avmnist[concat]"
        assert profile.device is RTX_2080TI
        assert profile.batch_size == 4
        assert profile.modalities == ["image", "audio"]

    def test_algorithm_level(self, profile):
        alg = profile.algorithm_metrics()
        assert alg["parameters"] > 0
        assert alg["parameter_bytes"] == alg["parameters"] * 4
        assert alg["flops"] > 0
        assert alg["flops_per_sample"] == pytest.approx(alg["flops"] / 4)
        assert alg["num_modalities"] == 2

    def test_system_level(self, profile):
        sysm = profile.system_metrics()
        assert sysm["total_time"] == pytest.approx(sysm["gpu_time"] + sysm["cpu_runtime_time"])
        assert 0 < sysm["cpu_runtime_share"] < 1
        assert sysm["peak_memory"] == pytest.approx(
            sysm["memory_model"] + sysm["memory_dataset"] + sysm["memory_intermediate"])

    def test_architecture_level(self, profile):
        arch = profile.architecture_metrics()
        assert set(arch["stage_time"]) == {"encoder", "fusion", "head"}
        assert sum(arch["kernel_categories"].values()) == pytest.approx(1.0)
        assert sum(arch["kernel_size_distribution"].values()) == pytest.approx(1.0)

    def test_throughput(self, profile):
        assert profile.throughput == pytest.approx(4 / profile.total_time)


class TestRepricing:
    def test_same_trace_different_devices(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 4, seed=0)
        profiler = MMBenchProfiler("2080ti")
        trace = profiler.capture(model, batch)
        server = profiler.price(model, trace, 4)
        nano = profiler.price(model, trace, 4, device="nano")
        assert nano.device is JETSON_NANO
        assert nano.total_time > server.total_time

    def test_byte_overrides(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 4, seed=0)
        profiler = MMBenchProfiler("2080ti")
        trace = profiler.capture(model, batch)
        r = profiler.price(model, trace, 4, model_bytes=123.0, input_bytes=456.0)
        assert r.memory.model == 123.0
        assert r.memory.dataset == 456.0

    def test_capture_leaves_model_in_eval(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        MMBenchProfiler("2080ti").capture(model, batch)
        assert not model.training

    def test_device_object_accepted(self):
        profiler = MMBenchProfiler(RTX_2080TI)
        assert profiler.device is RTX_2080TI
