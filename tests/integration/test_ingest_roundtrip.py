"""Differential round-trip: export -> ingest must price identically.

The ingest analogue of the meta==eager tier-1 invariant: every built-in
workload trace, serialized to execution-graph JSON through an actual file
(so float repr round-tripping is exercised) and re-ingested, must price
within 1e-9 relative of the native trace on the execution engine — and
the rebuilt columns must be equal, not merely close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.export.graph import stored_to_graph, write_graph
from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.trace.ingest import ingest_graph
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads

RTOL = 1e-9
BATCH = 2

_COMPARED_COLUMNS = (
    "flops", "bytes_read", "bytes_written", "threads",
    "coalesced_fraction", "reuse_factor",
    "category_codes", "pass_codes", "seq",
    "host_bytes", "host_kind_codes", "host_pass_codes", "host_seq",
)


@pytest.fixture(scope="module")
def store():
    return TraceStore()


def roundtrip(stored, tmp_path, name):
    graph = stored_to_graph(stored, batch_size=BATCH, name=name)
    path = write_graph(graph, tmp_path / f"{name}.json")
    return ingest_graph(str(path))


def assert_equivalent(stored, ingested):
    native, rebuilt = stored.trace, ingested.trace
    assert rebuilt.total_flops == pytest.approx(native.total_flops, rel=RTOL)
    assert rebuilt.total_bytes == pytest.approx(native.total_bytes, rel=RTOL)

    c1, c2 = native.columns(), rebuilt.columns()
    for column in _COMPARED_COLUMNS:
        assert np.array_equal(getattr(c1, column), getattr(c2, column)), column
    # Interned tables are rebuilt in the same first-seen order, so label
    # lookups agree too.
    assert c1.stage_table == c2.stage_table
    assert c1.modality_table == c2.modality_table

    engine = ExecutionEngine(get_device("2080ti"))
    r1 = engine.run(native, model_bytes=stored.parameter_bytes,
                    input_bytes=stored.input_bytes)
    r2 = engine.run(rebuilt, model_bytes=ingested.parameter_bytes,
                    input_bytes=ingested.input_bytes)
    for metric in ("total_time", "gpu_time", "host_time", "launch_time",
                   "transfer_time", "sync_time"):
        a, b = getattr(r1, metric), getattr(r2, metric)
        assert b == pytest.approx(a, rel=RTOL, abs=1e-30), metric


@pytest.mark.parametrize("workload", list_workloads())
def test_all_nine_workloads_roundtrip(workload, store, tmp_path):
    stored = store.get_or_capture(workload, batch_size=BATCH, backend="meta")
    ingested = roundtrip(stored, tmp_path, workload)
    assert_equivalent(stored, ingested)
    assert ingested.report.unknown_count == 0  # native vocab fully mapped
    assert ingested.batch_size == BATCH


def test_training_trace_roundtrips_with_pass_fidelity(store, tmp_path):
    stored = store.get_or_capture_training(
        "avmnist", batch_size=BATCH, backend="meta", optimizer="adam")
    ingested = roundtrip(stored, tmp_path, "avmnist_train")
    assert_equivalent(stored, ingested)
    assert ingested.trace.passes() == ["forward", "loss", "backward", "optimizer"]


def test_store_ingest_path_prices_identically(store, tmp_path):
    """get_or_ingest -> profile_stored matches the native pricing too."""
    from repro.profiling.profiler import MMBenchProfiler

    stored = store.get_or_capture("avmnist", batch_size=BATCH, backend="meta")
    graph = stored_to_graph(stored, batch_size=BATCH, name="avmnist")
    path = write_graph(graph, tmp_path / "avmnist.json")

    entry = store.get_or_ingest(str(path))
    assert entry.extra["batch_size"] == BATCH
    assert entry.extra["ingest"]["unknown_ops"] == {}

    profiler = MMBenchProfiler("2080ti")
    native = profiler.profile_stored(stored, BATCH)
    external = profiler.profile_stored(entry, BATCH)
    assert external.total_time == pytest.approx(native.total_time, rel=RTOL)
    assert external.flops == pytest.approx(native.flops, rel=RTOL)
    # Content addressing: the same file is a warm hit, not a re-ingest.
    captures = store.stats["captures"]
    again = store.get_or_ingest(str(path))
    assert store.stats["captures"] == captures
    assert again is entry
