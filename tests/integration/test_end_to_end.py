"""Integration tests: full pipelines across module boundaries."""

import numpy as np
import pytest

from repro import nn
from repro.core.suite import BenchmarkSuite, RunConfig
from repro.core.train import train_model
from repro.data.generators import LatentMultimodalDataset
from repro.data.synthetic import random_batch
from repro.export.timeloop import export_problems
from repro.profiling.profiler import MMBenchProfiler
from repro.trace.timeline import scale_trace
from repro.workloads.registry import get_workload, list_workloads


class TestTrainingPipeline:
    """Data generator -> workload model -> optimizer -> metric."""

    def test_avmnist_fusion_beats_weak_modality(self):
        info = get_workload("avmnist")
        ds = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=3)
        multi = train_model(info.build("concat", seed=0), ds,
                            n_train=256, n_test=192, epochs=5)
        audio = train_model(info.build_unimodal("audio", seed=0), ds,
                            n_train=256, n_test=192, epochs=5)
        assert multi.metric > audio.metric + 0.05

    def test_mujoco_push_fusion_ordering(self):
        """Sec. 4.2.2: late-fusion LSTM clearly beats tensor fusion on Push."""
        info = get_workload("mujoco_push")
        ds = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=20)
        lstm = train_model(info.build("late_lstm", seed=0), ds,
                           n_train=256, n_test=160, epochs=4)
        tensor = train_model(info.build("tensor", seed=0), ds,
                             n_train=256, n_test=160, epochs=4)
        assert lstm.metric < tensor.metric  # MSE: lower is better

    def test_segmentation_trains(self):
        info = get_workload("medical_seg")
        ds = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=5)
        result = train_model(info.build("concat", seed=0), ds,
                             n_train=96, n_test=32, epochs=4, batch_size=16)
        assert result.metric > 0.5  # dice well above trivial


class TestProfilingPipeline:
    """Workload -> trace -> device pricing -> report -> export."""

    @pytest.mark.parametrize("name", list_workloads())
    def test_every_workload_profiles_on_every_device(self, name):
        info = get_workload(name)
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        profiler = MMBenchProfiler("2080ti")
        trace = profiler.capture(model, batch)
        times = {}
        for device in ("2080ti", "orin", "nano"):
            report = profiler.price(model, trace, 2, device=device)
            times[device] = report.total_time
            assert report.gpu_time > 0
        assert times["nano"] > times["orin"] > times["2080ti"]

    def test_trace_scaling_composes_with_pricing(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 4, seed=0)
        profiler = MMBenchProfiler("2080ti")
        trace = profiler.capture(model, batch)
        base = profiler.price(model, trace, 4)
        # Small kernels are launch/ramp-dominated, so modest scaling barely
        # moves time; a large factor must push into the work-dominated regime.
        scaled = profiler.price(model, scale_trace(trace, 256.0), 4)
        assert scaled.gpu_time > base.gpu_time * 10

    def test_profile_then_export(self):
        info = get_workload("transfuser")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        trace = MMBenchProfiler("2080ti").capture(model, batch)
        problems = export_problems(trace)
        assert any(p["problem"]["shape"] == "cnn-layer" for p in problems)
        assert any(p["problem"]["shape"] == "gemm" for p in problems)


class TestSuiteRoundTrip:
    def test_inference_and_training_step_same_config(self):
        suite = BenchmarkSuite()
        config = RunConfig(workload="vision_touch", batch_size=4)
        profile = suite.run_inference(config)
        loss = suite.run_training_step(config)
        assert profile.total_time > 0 and np.isfinite(loss)

    def test_cross_device_consistent_kernel_counts(self):
        suite = BenchmarkSuite()
        server = suite.run_inference(RunConfig(workload="avmnist", batch_size=4,
                                               device="2080ti"))
        nano = suite.run_inference(RunConfig(workload="avmnist", batch_size=4,
                                             device="nano"))
        assert len(server.report.kernels) == len(nano.report.kernels)


class TestFailureInjection:
    def test_missing_modality_detected(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        del batch["audio"]
        with pytest.raises(KeyError, match="audio"):
            model(batch)

    def test_wrong_spatial_size_fails_loudly(self):
        info = get_workload("avmnist")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        batch["image"] = batch["image"][:, :, :14, :14]
        with pytest.raises(Exception):
            model(batch)

    def test_nonfinite_inputs_propagate_not_crash(self):
        info = get_workload("mujoco_push")
        model = info.build("concat", seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        batch["image"][:] = np.nan
        with nn.no_grad():
            out = model(batch)
        assert np.isnan(out.data).any()
