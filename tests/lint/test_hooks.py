"""Pre-run lint hooks: profile_stored, simulate_mixed and get_or_ingest
refuse artifacts with lint errors unless the caller opts out."""

from __future__ import annotations

import json

import pytest

from repro.lint import LintFailure
from repro.profiling.profiler import MMBenchProfiler
from repro.serving.faults import DeviceRecover, FaultPlan
from repro.serving.policies import FixedBatchPolicy
from repro.serving.simulator import TenantSpec, simulate_mixed
from repro.trace.store import TraceStore

# A graph that ingests fine (all descriptors valid) but whose explicit
# pass annotations interleave: the optimizer step precedes the backward
# kernel, an MMB201 lint *error* on the resulting trace.
INTERLEAVED = {
    "schema": "mmbench-eg/1",
    "name": "interleaved",
    "batch_size": 4,
    "nodes": [
        {"id": 1, "name": "matmul", "parents": [], "pass": "forward",
         "input_shapes": [[4, 8], [8, 4]], "output_shapes": [[4, 4]]},
        {"id": 2, "name": "sgd_step", "parents": [1], "pass": "optimizer"},
        {"id": 3, "name": "matmul_backward", "parents": [1],
         "pass": "backward",
         "input_shapes": [[4, 4]], "output_shapes": [[4, 8]]},
    ],
}


@pytest.fixture
def bad_graph(tmp_path):
    path = tmp_path / "interleaved.json"
    path.write_text(json.dumps(INTERLEAVED))
    return path


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "cache")


class TestGetOrIngestHook:
    def test_cold_ingest_refuses_lint_errors(self, store, bad_graph):
        with pytest.raises(LintFailure, match="MMB201"):
            store.get_or_ingest(bad_graph)

    def test_refused_entry_is_not_cached(self, store, bad_graph):
        with pytest.raises(LintFailure):
            store.get_or_ingest(bad_graph)
        assert store.entries() == []

    def test_opt_out_ingests_and_caches(self, store, bad_graph):
        stored = store.get_or_ingest(bad_graph, lint=False)
        assert stored.model_name == "interleaved"
        # Warm hits trust the cache: no re-lint, no raise.
        again = store.get_or_ingest(bad_graph)
        assert again.model_name == "interleaved"

    def test_clean_graph_ingests_with_lint_on(self, store, tmp_path):
        clean = dict(INTERLEAVED, name="clean",
                     nodes=[n for n in INTERLEAVED["nodes"]
                            if n["pass"] != "optimizer"])
        path = tmp_path / "clean.json"
        path.write_text(json.dumps(clean))
        assert store.get_or_ingest(path).model_name == "clean"


class TestProfileStoredHook:
    def test_refuses_bad_stored_trace(self, store, bad_graph):
        stored = store.get_or_ingest(bad_graph, lint=False)
        profiler = MMBenchProfiler("2080ti")
        with pytest.raises(LintFailure, match="stored trace 'interleaved'"):
            profiler.profile_stored(stored, batch_size=4)
        # The opt-out prices the known-bad trace anyway.
        result = profiler.profile_stored(stored, batch_size=4, lint=False)
        assert result.report.total_time > 0


class TestSimulateMixedHook:
    @staticmethod
    def _tenants():
        return [TenantSpec(name="avmnist", cost=lambda k: 0.001 * k,
                           policy=FixedBatchPolicy(4))]

    def test_refuses_unreachable_recover(self):
        plan = FaultPlan(events=(DeviceRecover("2080ti", 0.5),))
        with pytest.raises(LintFailure, match="MMB401"):
            simulate_mixed(self._tenants(), n_requests=50,
                           arrival_rate=1000.0, faults=plan)

    def test_opt_out_defers_to_runtime_checks(self):
        # With the pre-run lint skipped, the same broken plan still fails —
        # but later, inside the simulation, as the runtime's own error.
        from repro.serving.faults import FaultPlanError

        plan = FaultPlan(events=(DeviceRecover("2080ti", 0.5),))
        with pytest.raises(FaultPlanError, match="recover without"):
            simulate_mixed(self._tenants(), n_requests=50,
                           arrival_rate=1000.0, faults=plan, lint=False)

    def test_empty_plan_lints_clean(self):
        report = simulate_mixed(self._tenants(), n_requests=50,
                                arrival_rate=1000.0, faults=FaultPlan())
        assert report.n_requests == 50


class TestSuiteLint:
    def test_suite_lints_workload_by_name(self, monkeypatch, tmp_path):
        from repro.core.suite import BenchmarkSuite
        from repro.trace.store import set_default_store

        monkeypatch.setenv("MMBENCH_CACHE_DIR", str(tmp_path))
        prev = set_default_store(None)
        try:
            report = BenchmarkSuite().lint("avmnist")
            assert report.ok
            assert report.sources == ["workload:avmnist"]
        finally:
            set_default_store(prev)

    def test_suite_lints_arbitrary_artifacts(self):
        from repro.core.suite import BenchmarkSuite

        plan = FaultPlan(events=(DeviceRecover("nano", 0.1),))
        report = BenchmarkSuite().lint(plan)
        assert "MMB401" in report.codes()
