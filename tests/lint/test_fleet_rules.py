"""Golden diagnostics for the MMB31x fleet-configuration rules — one
hand-built bad config per rule code, with code/severity/location pinned,
plus a clean-corpus check over representative valid fleets."""

from __future__ import annotations

import pytest

from repro.lint import check, lint_fleet
from repro.lint.core import LintFailure
from repro.serving import AutoscalePolicy, DeviceGroup, FleetConfig
from repro.serving.faults import DeviceDown, DeviceRecover, FaultPlan, ThermalThrottle

GROUPS = (DeviceGroup("2080ti", 4, pool=8), DeviceGroup("nano", 2))


def one(report, code):
    found = [d for d in report.diagnostics if d.code == code]
    assert len(found) == 1, f"expected exactly one {code}, got {report}"
    return found[0]


# -- MMB310: autoscale bounds vs provisioned pool -------------------------------------------------


def test_mmb310_max_replicas_over_pool():
    report = lint_fleet(GROUPS, autoscale=AutoscalePolicy(max_replicas=16))
    diags = [d for d in report.diagnostics if d.code == "MMB310"]
    assert [d.location for d in diags] == ["group '2080ti'", "group 'nano'"]
    assert all(d.severity == "warning" for d in diags)
    assert "max_replicas=16" in diags[0].message
    assert "pool of 8" in diags[0].message
    assert "pool>=16" in diags[0].fix


def test_mmb310_min_replicas_over_pool():
    report = lint_fleet(GROUPS, autoscale=AutoscalePolicy(min_replicas=3))
    diag = one(report, "MMB310")
    assert diag.location == "group 'nano'"
    assert "min_replicas=3" in diag.message


def test_mmb310_bounds_within_pool_are_clean():
    # The ceiling must fit every group's pool (nano's is 2).
    report = lint_fleet(GROUPS, autoscale=AutoscalePolicy(min_replicas=2,
                                                          max_replicas=2))
    assert "MMB310" not in report.codes()


# -- MMB311: cooldown shorter than interval -------------------------------------------------------


def test_mmb311_cooldown_shorter_than_interval():
    report = lint_fleet(GROUPS, autoscale=AutoscalePolicy(interval=0.1,
                                                          cooldown=0.05))
    diag = one(report, "MMB311")
    assert diag.severity == "warning"
    assert diag.location == "autoscale"
    assert "0.05s" in diag.message and "0.1s" in diag.message
    assert "raise cooldown" in diag.fix


def test_mmb311_cooldown_at_interval_is_clean():
    report = lint_fleet(GROUPS, autoscale=AutoscalePolicy(interval=0.1,
                                                          cooldown=0.1))
    assert "MMB311" not in report.codes()


# -- MMB312: fault plan targets unknown groups ----------------------------------------------------


def test_mmb312_unknown_fault_device():
    plan = FaultPlan(events=(
        DeviceDown(time=0.5, device="tpu"),
        DeviceRecover(time=1.0, device="tpu"),
        DeviceDown(time=2.0, device="nano"),
        DeviceRecover(time=2.5, device="nano"),
    ))
    report = lint_fleet(GROUPS, faults=plan)
    diag = one(report, "MMB312")  # deduplicated per unknown device
    assert diag.severity == "error"
    assert diag.location == "event[0] 'tpu'"
    assert "'tpu'" in diag.message
    assert "2080ti" in diag.message and "nano" in diag.message


def test_mmb312_known_devices_are_clean():
    plan = FaultPlan(events=(
        ThermalThrottle(device="2080ti", time=0.5, until=1.0, factor=2.0),))
    report = lint_fleet(GROUPS, faults=plan)
    assert "MMB312" not in report.codes()


def test_mmb312_fails_check():
    plan = FaultPlan(events=(DeviceDown(time=0.5, device="tpu"),
                             DeviceRecover(time=1.0, device="tpu")))
    report = lint_fleet(GROUPS, faults=plan)
    with pytest.raises(LintFailure, match="MMB312"):
        check(report, what="fleet configuration")


# -- dispatch and clean corpus --------------------------------------------------------------------


def test_lint_artifact_dispatches_fleet_config():
    from repro.lint import lint_artifact

    config = FleetConfig(groups=GROUPS, autoscale=AutoscalePolicy(
        interval=0.1, cooldown=0.05))
    report = lint_artifact(config)
    assert "MMB311" in report.codes()


@pytest.mark.parametrize("autoscale", [
    None,
    AutoscalePolicy(),
    AutoscalePolicy(metric="p99", threshold=0.1, interval=0.05, cooldown=0.25,
                    min_replicas=1, max_replicas=2),
], ids=["no-autoscale", "defaults", "p99-bounded"])
def test_clean_fleet_corpus(autoscale):
    plan = FaultPlan(events=(
        DeviceDown(time=0.5, device="nano"),
        DeviceRecover(time=1.0, device="nano"),
    ))
    report = lint_fleet(GROUPS, autoscale=autoscale, faults=plan)
    assert not report.diagnostics, report
    check(report, what="fleet configuration")
