"""Golden diagnostics for the MMB1xx/MMB2xx trace and graph rules.

One hand-built bad artifact per rule code, with the diagnostic's code,
severity and location pinned — the rule codes are a public, stable
contract (suppression files reference them), so a drift here is an API
break, not a cosmetic change.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_graph, lint_trace
from repro.trace.events import (
    STAGE_ENCODER,
    STAGE_FUSION,
    KernelCategory,
    KernelEvent,
)
from repro.trace.tracer import Trace


def kernel(name="k", flops=10.0, bytes_read=8.0, bytes_written=8.0,
           threads=32, stage=STAGE_ENCODER, pass_="forward", seq=0,
           category=KernelCategory.GEMM, **kw) -> KernelEvent:
    return KernelEvent(name=name, category=category, flops=flops,
                       bytes_read=bytes_read, bytes_written=bytes_written,
                       threads=threads, stage=stage, pass_=pass_, seq=seq,
                       **kw)


def lint_kernels(*kernels):
    return lint_trace(Trace(kernels=list(kernels)))


def only(report, code):
    """The single diagnostic of ``report``, asserted to carry ``code``."""
    matching = [d for d in report.diagnostics if d.code == code]
    assert len(matching) == 1, \
        f"expected exactly one {code}, got {report.codes()}"
    return matching[0]


# -- MMB101: negative work descriptors --------------------------------------------


def test_mmb101_negative_flops():
    report = lint_kernels(kernel(name="bad_gemm", flops=-5.0, seq=1))
    diag = only(report, "MMB101")
    assert diag.severity == "error"
    assert diag.location == "kernel[0] 'bad_gemm'"
    assert "negative flops" in diag.message
    assert not report.ok


def test_mmb101_negative_bytes_and_threads_counted_separately():
    report = lint_kernels(
        kernel(name="a", bytes_read=-1.0, seq=0),
        kernel(name="b", threads=-4, seq=1),
    )
    codes = [d.code for d in report.diagnostics]
    assert codes.count("MMB101") == 2


def test_mmb101_negative_host_bytes():
    from repro.trace.events import HostEvent, HostOpKind

    trace = Trace(kernels=[kernel()],
                  host_events=[HostEvent(kind=HostOpKind.H2D, bytes=-64.0,
                                         name="h2d_in", seq=1)])
    diag = only(lint_trace(trace), "MMB101")
    assert diag.location == "host[0] 'h2d_in'"


# -- MMB102: non-finite descriptors ------------------------------------------------


def test_mmb102_nan_flops():
    report = lint_kernels(kernel(name="nan_k", flops=float("nan")))
    diag = only(report, "MMB102")
    assert diag.severity == "error"
    assert diag.location == "kernel[0] 'nan_k'"
    assert "non-finite flops" in diag.message


def test_mmb102_inf_bytes():
    report = lint_kernels(kernel(bytes_written=float("inf")))
    assert "MMB102" in report.codes()


# -- MMB103: dead kernels -----------------------------------------------------------


def test_mmb103_dead_kernel():
    report = lint_kernels(
        kernel(name="noop", flops=0.0, bytes_read=0.0, bytes_written=0.0),
        kernel(name="real", seq=1),
    )
    diag = only(report, "MMB103")
    assert diag.severity == "warning"
    assert diag.location == "kernel[0] 'noop'"
    assert "1 dead kernel" in diag.message
    assert report.ok  # warnings alone keep the report ok


# -- MMB104: locality descriptors out of range --------------------------------------


def test_mmb104_coalesced_out_of_range():
    report = lint_kernels(kernel(name="c", coalesced_fraction=1.5))
    diag = only(report, "MMB104")
    assert diag.severity == "warning"
    assert "coalesced_fraction" in diag.message


def test_mmb104_reuse_below_one():
    report = lint_kernels(kernel(name="r", reuse_factor=0.25))
    diag = only(report, "MMB104")
    assert "reuse_factor" in diag.message


# -- MMB201: pass ordering -----------------------------------------------------------


def test_mmb201_optimizer_before_backward():
    report = lint_kernels(
        kernel(name="fwd", pass_="forward", seq=0),
        kernel(name="adam_step", pass_="optimizer", seq=1,
               stage="optimizer"),
        kernel(name="grad", pass_="backward", seq=2),
    )
    diag = only(report, "MMB201")
    assert diag.severity == "error"
    assert diag.location == "kernel[1] 'adam_step'"
    assert "optimizer" in diag.message and "backward" in diag.message


def test_mmb201_clean_ordering_passes():
    report = lint_kernels(
        kernel(name="fwd", pass_="forward", seq=0),
        kernel(name="loss", pass_="loss", seq=1),
        kernel(name="grad", pass_="backward", seq=2),
        kernel(name="step", pass_="optimizer", seq=3, stage="optimizer"),
    )
    assert "MMB201" not in report.codes()


# -- MMB202: unknown-op bucket --------------------------------------------------------


def _unknown_kernel(name, seq):
    return kernel(name=name, seq=seq, stage="unknown",
                  category=KernelCategory.OTHER)


def test_mmb202_unknown_bucket_above_threshold():
    report = lint_kernels(
        kernel(name="gemm", seq=0),
        _unknown_kernel("vendor_blob", 1),
        _unknown_kernel("mystery", 2),
    )
    diag = only(report, "MMB202")
    assert diag.severity == "warning"
    assert diag.location == "kernel[1] 'vendor_blob'"
    assert "67%" in diag.message


def test_mmb202_threshold_is_tunable():
    trace = Trace(kernels=[kernel(name="gemm", seq=0),
                           _unknown_kernel("vendor_blob", 1)])
    assert "MMB202" in lint_trace(trace).codes()  # 50% > 25% default
    # ... with a 60% threshold the same trace is clean
    relaxed = lint_trace(trace, unknown_threshold=0.6)
    assert "MMB202" not in relaxed.codes()


# -- MMB203: fusion legality -----------------------------------------------------------


def test_mmb203_fusion_before_encoder():
    report = lint_kernels(
        kernel(name="early_concat", stage=STAGE_FUSION, seq=0),
        kernel(name="enc", stage=STAGE_ENCODER, seq=1),
    )
    diag = only(report, "MMB203")
    assert diag.severity == "error"
    assert diag.location == "kernel[0] 'early_concat'"


def test_mmb203_backward_reversal_is_legal():
    # The backward pass visits fusion before the encoders — that's the
    # chain rule, not a bug.
    report = lint_kernels(
        kernel(name="enc", stage=STAGE_ENCODER, pass_="forward", seq=0),
        kernel(name="fuse", stage=STAGE_FUSION, pass_="forward", seq=1),
        kernel(name="fuse_bwd", stage=STAGE_FUSION, pass_="backward", seq=2),
        kernel(name="enc_bwd", stage=STAGE_ENCODER, pass_="backward", seq=3),
    )
    assert "MMB203" not in report.codes()


# -- MMB204: empty trace -----------------------------------------------------------------


def test_mmb204_empty_trace_is_info():
    report = lint_trace(Trace(kernels=[]))
    diag = only(report, "MMB204")
    assert diag.severity == "info"
    assert report.ok
    assert report.exit_code(strict=True) == 0  # infos never fail


# -- graph rules: MMB110 / MMB111 / MMB112 -------------------------------------------------


GRAPH = {
    "schema": "mmbench-eg/1",
    "name": "bad",
    "batch_size": 1,
}


def test_mmb111_missing_parent():
    payload = dict(GRAPH, nodes=[
        {"id": 1, "name": "matmul", "parents": []},
        {"id": 2, "name": "relu", "parents": [99]},
    ])
    diag = only(lint_graph(payload), "MMB111")
    assert diag.severity == "error"
    assert diag.location == "node 2 ('relu')"
    assert "parent 99" in diag.message


def test_mmb111_cycle():
    payload = dict(GRAPH, nodes=[
        {"id": 1, "name": "a", "parents": [2]},
        {"id": 2, "name": "b", "parents": [1]},
    ])
    diag = only(lint_graph(payload), "MMB111")
    assert "cycle" in diag.message


def test_mmb112_negative_node_descriptor():
    payload = dict(GRAPH, nodes=[
        {"id": 1, "name": "matmul", "parents": [], "flops": -100.0},
    ])
    diag = only(lint_graph(payload), "MMB112")
    assert diag.severity == "error"
    assert diag.location == "node 1 ('matmul')"
    assert "flops=-100.0" in diag.message


def test_mmb112_negative_model_metadata():
    payload = dict(GRAPH, nodes=[{"id": 1, "name": "matmul", "parents": []}],
                   model={"parameter_bytes": -4e9})
    diag = only(lint_graph(payload), "MMB112")
    assert diag.location == "model.parameter_bytes"


def test_mmb110_bytes_below_declared_footprint():
    payload = dict(GRAPH, nodes=[
        {"id": 1, "name": "matmul", "parents": [],
         "output_shapes": [[8, 8]], "output_dtypes": ["float32"],
         "bytes_written": 4.0},  # declared outputs need 256 bytes
    ])
    diag = only(lint_graph(payload), "MMB110")
    assert diag.severity == "warning"
    assert diag.location == "node 1 ('matmul')"
    assert "256" in diag.message


def test_clean_graph_has_no_findings():
    payload = dict(GRAPH, nodes=[
        {"id": 1, "name": "matmul", "parents": [],
         "input_shapes": [[4, 8], [8, 4]], "output_shapes": [[4, 4]]},
        {"id": 2, "name": "relu", "parents": [1],
         "input_shapes": [[4, 4]], "output_shapes": [[4, 4]]},
    ])
    report = lint_graph(payload)
    assert report.diagnostics == []


# -- vectorized rules emit one diagnostic, not one per element ------------------------------


def test_mass_violations_fold_into_one_diagnostic():
    kernels = [kernel(name=f"k{i}", flops=-1.0, seq=i) for i in range(500)]
    report = lint_kernels(*kernels)
    flops_diags = [d for d in report.diagnostics
                   if d.code == "MMB101" and "flops" in d.message]
    assert len(flops_diags) == 1
    assert "500 kernel(s)" in flops_diags[0].message


# -- the ingest bugfix: model metadata rejected with a structured error ----------------------


def test_ingest_rejects_negative_model_metadata():
    from repro.trace.ingest import IngestError, ingest_graph

    payload = dict(GRAPH, nodes=[{"id": 1, "name": "matmul", "parents": []}],
                   model={"parameters": -100})
    with pytest.raises(IngestError, match="model.parameters.*-100"):
        ingest_graph(payload)


def test_ingest_rejects_non_numeric_model_metadata():
    from repro.trace.ingest import IngestError, ingest_graph

    payload = dict(GRAPH, nodes=[{"id": 1, "name": "matmul", "parents": []}],
                   model={"parameter_bytes": "oops"})
    with pytest.raises(IngestError, match="model.parameter_bytes"):
        ingest_graph(payload)


def test_ingest_accepts_valid_model_metadata():
    from repro.trace.ingest import ingest_graph

    payload = dict(GRAPH, nodes=[{"id": 1, "name": "matmul", "parents": []}],
                   model={"parameters": 10, "parameter_bytes": 40,
                          "input_bytes": 16})
    ingested = ingest_graph(payload)
    assert ingested.parameters == 10
    assert ingested.parameter_bytes == 40
