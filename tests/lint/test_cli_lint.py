"""``mmbench lint`` / ``mmbench store lint``: exit codes, formats,
baselines, and the nine-workload clean-corpus property."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.cli import main
from repro.workloads.registry import list_workloads
from repro.lint import lint_trace
from repro.trace.store import TraceStore, set_default_store

FIXTURES = Path(__file__).parent.parent / "fixtures" / "execution_graphs"


@pytest.fixture(autouse=True)
def fresh_default_store(monkeypatch):
    monkeypatch.delenv("MMBENCH_CACHE_DIR", raising=False)
    prev = set_default_store(None)
    yield
    set_default_store(prev)


def fixture(name: str) -> str:
    return str(FIXTURES / f"{name}.json")


class TestLintCommand:
    def test_clean_graph_exits_zero(self, capsys):
        assert main(["lint", fixture("cnn_forward")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_fixture_exits_one(self, capsys):
        assert main(["lint", fixture("cyclic")]) == 1
        assert "MMB111" in capsys.readouterr().out

    def test_warnings_pass_unless_strict(self, capsys):
        assert main(["lint", fixture("unknown_ops")]) == 0
        assert "MMB202" in capsys.readouterr().out
        assert main(["lint", "--strict", fixture("unknown_ops")]) == 1

    def test_infos_never_fail(self):
        assert main(["lint", "--strict", fixture("empty")]) == 0

    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json",
                     fixture("missing_parent")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "mmbench-lint/1"
        assert payload["counts"]["error"] >= 1
        assert any(d["code"] == "MMB111" for d in payload["diagnostics"])

    def test_many_targets_merge_into_one_report(self, capsys):
        assert main(["lint", fixture("cnn_forward"),
                     fixture("transformer_train")]) == 0
        assert "2 artifact(s)" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "no-such-thing"]) == 2
        assert "no-such-thing" in capsys.readouterr().err

    def test_workload_name_lints_captured_trace(self, tmp_path, capsys):
        assert main(["lint", "avmnist", "--cache-dir", str(tmp_path),
                     "--strict", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sources"] == ["workload:avmnist"]

    def test_store_digest_prefix_target(self, tmp_path, capsys):
        store = TraceStore(tmp_path)
        entry_key = store.make_key("avmnist", batch_size=2, backend="meta")
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        digest = entry_key.digest()[:10]
        assert main(["lint", digest, "--cache-dir", str(tmp_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sources"] == [f"store:{digest}"]

    def test_digest_without_cache_dir_hints(self, capsys):
        assert main(["lint", "deadbeef00"]) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_suppress(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        # Adopt: record the unknown-op warning as accepted debt.
        assert main(["lint", fixture("unknown_ops"),
                     "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        # Ratchet: strict now passes because the finding is baselined.
        assert main(["lint", "--strict", fixture("unknown_ops"),
                     "--baseline", str(baseline)]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestStoreLint:
    def test_store_lint_walks_every_entry(self, tmp_path, capsys):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        store.get_or_capture("mmimdb", batch_size=2, backend="meta")
        assert main(["store", "lint", "--cache-dir", str(tmp_path),
                     "--strict"]) == 0
        assert "2 artifact(s)" in capsys.readouterr().out

    def test_store_lint_requires_cache_dir(self, capsys):
        assert main(["store", "lint"]) == 2


class TestCleanCorpus:
    """The paper's nine workloads are the lint rules' null hypothesis:
    a clean capture must produce zero findings at any severity."""

    @pytest.mark.parametrize("workload", sorted(list_workloads()))
    def test_workload_capture_lints_clean(self, workload, tmp_path):
        store = TraceStore(tmp_path)
        stored = store.get_or_capture(workload, batch_size=4, backend="meta")
        report = lint_trace(stored, source=workload)
        assert report.diagnostics == [], \
            [d.render() for d in report.diagnostics]

    def test_training_capture_lints_clean(self, tmp_path):
        store = TraceStore(tmp_path)
        stored = store.get_or_capture_training("avmnist", batch_size=4,
                                               backend="meta")
        report = lint_trace(stored, source="avmnist+train")
        assert report.diagnostics == [], \
            [d.render() for d in report.diagnostics]
