"""Golden diagnostics for the MMB3xx/4xx/5xx schedule, serving-timeline,
fault-plan and config rules — one hand-built bad artifact per rule code,
with code/severity/location pinned."""

from __future__ import annotations

import numpy as np

from repro.hw.device import get_device
from repro.hw.streams import StreamSchedule, StreamWindow
from repro.lint import (
    lint_fault_plan,
    lint_registry,
    lint_schedule,
    lint_serving_report,
    lint_tenants,
)
from repro.serving.faults import (
    DeviceDown,
    DeviceFaultStats,
    DeviceRecover,
    FaultPlan,
    FaultStats,
    ThermalThrottle,
)
from repro.serving.request import Request
from repro.serving.simulator import ServingReport, TenantSpec


def window(name, share, bounds):
    start = np.array([b[0] for b in bounds], dtype=np.float64)
    end = np.array([b[1] for b in bounds], dtype=np.float64)
    return StreamWindow(name=name, share=share, start=start, end=end)


def schedule(*windows, makespan=None):
    streams = {w.name: w for w in windows}
    if makespan is None:
        makespan = max((w.busy_until for w in windows), default=0.0)
    return StreamSchedule(device=get_device("2080ti"), streams=streams,
                          makespan=makespan)


def only(report, code):
    matching = [d for d in report.diagnostics if d.code == code]
    assert len(matching) == 1, \
        f"expected exactly one {code}, got {report.codes()}"
    return matching[0]


# -- MMB301: the stream race detector ---------------------------------------------


def test_mmb301_overlapping_windows_on_one_stream():
    bad = window("image", 0.5, [(0.0, 1.0), (0.5, 1.5)])  # second starts early
    diag = only(lint_schedule(schedule(bad)), "MMB301")
    assert diag.severity == "error"
    assert diag.location == "stream 'image' window[1]"
    assert "overlapping" in diag.message


def test_mmb301_back_to_back_windows_are_clean():
    good = window("image", 0.5, [(0.0, 1.0), (1.0, 1.5)])
    assert lint_schedule(schedule(good)).diagnostics == []


# -- MMB302: share oversubscription -------------------------------------------------


def test_mmb302_share_sum_over_one():
    report = lint_schedule(schedule(
        window("image", 0.7, [(0.0, 1.0)]),
        window("audio", 0.6, [(0.0, 1.0)]),
    ))
    diag = only(report, "MMB302")
    assert diag.severity == "error"
    assert diag.location == "device 'rtx2080ti'"
    assert "1.3" in diag.message


# -- MMB303: window past makespan -----------------------------------------------------


def test_mmb303_window_past_makespan():
    report = lint_schedule(schedule(
        window("image", 0.5, [(0.0, 2.0)]), makespan=1.0))
    diag = only(report, "MMB303")
    assert diag.severity == "warning"
    assert diag.location == "stream 'image'"


# -- serving-timeline replay helpers ----------------------------------------------------


def _request(index, tenant, slot, dispatch, shed=False):
    req = Request(index=index, arrival=dispatch - 0.01, tenant=tenant)
    req.dispatch = dispatch
    req.finish = dispatch + 0.02
    req.device = slot if not shed else ""
    req.shed = shed
    return req


def _report(requests, fault_stats=None):
    return ServingReport(
        policy="adaptive", router="earliest-finish",
        n_requests=len(requests), arrival_rate=None, makespan=1.0,
        throughput=0.0, mean_latency=0.0, p50_latency=0.0, p95_latency=0.0,
        p99_latency=0.0, mean_queue_time=0.0, mean_formation_wait=0.0,
        mean_service_time=0.0, device_stats={}, requests=requests,
        fault_stats=fault_stats,
    )


# -- MMB304: cross-tenant batch leakage ---------------------------------------------------


def test_mmb304_two_tenants_in_one_batch():
    report = lint_serving_report(_report([
        _request(0, "avmnist", "2080ti#0", 0.10),
        _request(1, "mmimdb", "2080ti#0", 0.10),  # same slot, same instant
        _request(2, "mmimdb", "2080ti#0", 0.20),
    ]))
    diag = only(report, "MMB304")
    assert diag.severity == "error"
    assert diag.location == "slot '2080ti#0'"
    assert "avmnist" in diag.message and "mmimdb" in diag.message


def test_mmb304_same_instant_on_different_slots_is_clean():
    report = lint_serving_report(_report([
        _request(0, "avmnist", "2080ti#0", 0.10),
        _request(1, "mmimdb", "nano#0", 0.10),
    ]))
    assert report.diagnostics == []


# -- MMB305: dispatch-to-down-slot races ----------------------------------------------------


def _fault_stats(slot, down_windows):
    return FaultStats(
        plan_events=1, issued=0, completed=0, shed=0, retries=0,
        devices={slot: DeviceFaultStats(slot=slot, device=slot.split("#")[0],
                                        downtime=sum(e - s for s, e in down_windows),
                                        down_windows=list(down_windows))},
    )


def test_mmb305_dispatch_inside_down_window():
    stats = _fault_stats("nano#0", [(0.2, 0.5)])
    report = lint_serving_report(_report(
        [_request(0, "avmnist", "nano#0", 0.30)], fault_stats=stats))
    diag = only(report, "MMB305")
    assert diag.severity == "error"
    assert diag.location == "slot 'nano#0'"
    assert "1 request(s)" in diag.message


def test_mmb305_dispatch_at_recovery_boundary_is_clean():
    stats = _fault_stats("nano#0", [(0.2, 0.5)])
    report = lint_serving_report(_report(
        [_request(0, "avmnist", "nano#0", 0.5)], fault_stats=stats))
    assert report.diagnostics == []


# -- MMB401: unreachable recover ----------------------------------------------------------


def test_mmb401_recover_without_down():
    plan = FaultPlan(events=(DeviceRecover("nano", 0.5),))
    diag = only(lint_fault_plan(plan), "MMB401")
    assert diag.severity == "error"
    assert diag.location == "event[0]"
    assert "no preceding down" in diag.message


def test_mmb401_down_then_recover_is_clean():
    plan = FaultPlan(events=(DeviceDown("nano", 0.1),
                             DeviceRecover("nano", 0.5)))
    assert "MMB401" not in lint_fault_plan(plan).codes()


# -- MMB402: windows past the horizon --------------------------------------------------------


def test_mmb402_throttle_past_horizon():
    plan = FaultPlan(events=(ThermalThrottle("orin", 5.0, 6.0, 2.0),))
    report = lint_fault_plan(plan, horizon=1.0)
    diag = only(report, "MMB402")
    assert diag.severity == "warning"
    assert diag.location == "event[0]"
    assert "never take effect" in diag.message


def test_mmb402_needs_a_horizon():
    plan = FaultPlan(events=(ThermalThrottle("orin", 5.0, 6.0, 2.0),))
    assert "MMB402" not in lint_fault_plan(plan).codes()


# -- MMB403: whole-pool blackout ---------------------------------------------------------------


def test_mmb403_all_devices_down_simultaneously():
    plan = FaultPlan(events=(DeviceDown("2080ti", 0.1),
                             DeviceDown("nano", 0.2),
                             DeviceRecover("2080ti", 0.6),
                             DeviceRecover("nano", 0.7)))
    report = lint_fault_plan(plan, devices=("2080ti", "nano"))
    diag = only(report, "MMB403")
    assert diag.severity == "error"
    assert "0.2" in diag.message and "0.6" in diag.message


def test_mmb403_staggered_downs_are_clean():
    plan = FaultPlan(events=(DeviceDown("2080ti", 0.1),
                             DeviceRecover("2080ti", 0.2),
                             DeviceDown("nano", 0.3),
                             DeviceRecover("nano", 0.4)))
    report = lint_fault_plan(plan, devices=("2080ti", "nano"))
    assert "MMB403" not in report.codes()


def test_mmb403_inferred_pool_demotes_to_warning():
    # Without the real pool the plan can only speak for devices it names;
    # downing all of *those* is a warning, not an error.
    plan = FaultPlan(events=(DeviceDown("nano", 0.1),))
    diag = only(lint_fault_plan(plan), "MMB403")
    assert diag.severity == "warning"


# -- MMB404: device never recovers ----------------------------------------------------------------


def test_mmb404_down_without_recover():
    plan = FaultPlan(events=(DeviceDown("nano", 0.1),
                             DeviceRecover("nano", 0.2),
                             DeviceDown("nano", 0.5)))
    report = lint_fault_plan(plan, devices=("nano", "orin"))
    diag = only(report, "MMB404")
    assert diag.severity == "warning"
    assert diag.location == "event[2]"
    assert "never recovers" in diag.message


# -- MMB501: duplicate tenant names ------------------------------------------------------------------


def _tenant(name):
    from repro.serving.policies import FixedBatchPolicy

    return TenantSpec(name=name, cost=lambda k: 0.001 * k,
                      policy=FixedBatchPolicy(4))


def test_mmb501_duplicate_tenant_names():
    report = lint_tenants([_tenant("avmnist"), _tenant("avmnist")])
    diag = only(report, "MMB501")
    assert diag.severity == "error"
    assert diag.location == "tenant[1] 'avmnist'"


def test_mmb501_unique_names_are_clean():
    report = lint_tenants([_tenant("avmnist"), _tenant("mmimdb")])
    assert report.diagnostics == []


# -- MMB510 / MMB511: op-mapping registries ------------------------------------------------------------


def test_mmb510_shadowed_token_rule():
    from repro.trace.ingest import OpMappingRegistry

    registry = OpMappingRegistry(rules=())
    registry.register("conv2d", "conv")  # registered second, checked first
    registry.register("conv", "conv")  # prepends: now shadows conv2d
    diag = only(lint_registry(registry), "MMB510")
    assert diag.severity == "warning"
    assert diag.location == "rule[1] 'conv2d'"
    assert "never match" in diag.message


def test_mmb510_default_registry_is_clean():
    from repro.trace.ingest import default_registry

    assert lint_registry(default_registry()).diagnostics == []


def test_mmb511_empty_registry():
    from repro.trace.ingest import OpMappingRegistry

    diag = only(lint_registry(OpMappingRegistry(rules=())), "MMB511")
    assert diag.severity == "error"
    assert diag.location == "registry"


# -- clean end-to-end artifacts stay clean ----------------------------------------------------------------


def test_simulated_schedule_lints_clean(tmp_path):
    from repro.hw.streams import StreamScheduler
    from repro.trace.store import TraceStore

    store = TraceStore(tmp_path)
    stored = store.get_or_capture("avmnist", batch_size=8, backend="meta")
    sched = StreamScheduler("2080ti").schedule_trace(stored.trace)
    assert lint_schedule(sched).diagnostics == []


def test_chaos_serving_report_lints_clean():
    from repro.core.suite import BenchmarkSuite

    report = BenchmarkSuite().chaos_serve(
        "single-failure", workloads=("avmnist", "mmimdb"),
        n_requests=400, arrival_rate=1000.0)
    lint = lint_serving_report(report)
    assert lint.diagnostics == [], [d.render() for d in lint.diagnostics]
