"""Lint framework mechanics: diagnostics, the registry, reports,
baselines, and the LintFailure contract."""

from __future__ import annotations

import json

import pytest

from repro.lint.core import (
    BASELINE_SCHEMA,
    Diagnostic,
    LintFailure,
    LintReport,
    all_rules,
    get_rule,
    load_baseline,
    rule,
    rules_for,
    write_baseline,
)


def diag(code="MMB101", severity="error", message="bad", location="kernel[0]",
         **kw) -> Diagnostic:
    return Diagnostic(code=code, severity=severity, message=message,
                      location=location, **kw)


class TestDiagnostic:
    def test_fingerprint_is_code_plus_location(self):
        d = diag(code="MMB202", location="kernel[3] 'x'")
        assert d.fingerprint == "MMB202:kernel[3] 'x'"

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="unknown severity"):
            diag(severity="fatal")

    def test_render_carries_code_location_and_fix(self):
        line = diag(fix="do better", source="a.json").render()
        assert "MMB101" in line and "kernel[0]" in line
        assert "a.json" in line and "[fix: do better]" in line

    def test_to_dict_omits_empty_optionals(self):
        assert "fix" not in diag().to_dict()
        assert diag(fix="f").to_dict()["fix"] == "f"


class TestRegistry:
    def test_rule_codes_are_unique(self):
        with pytest.raises(ValueError, match="duplicate lint rule code"):
            rule("MMB101", "error", "trace", "dupe")(lambda a, c: [])

    def test_catalog_is_sorted_and_complete(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        # The issue's floor: at least 12 distinct stable rule codes.
        assert len(codes) >= 12
        for band in ("MMB1", "MMB2", "MMB3", "MMB4", "MMB5"):
            assert any(c.startswith(band) for c in codes), band

    def test_rules_for_partitions_by_kind(self):
        trace_codes = {r.code for r in rules_for("trace")}
        schedule_codes = {r.code for r in rules_for("schedule")}
        assert trace_codes and schedule_codes
        assert not trace_codes & schedule_codes

    def test_get_rule_summary_is_nonempty(self):
        assert get_rule("MMB101").summary


class TestLintReport:
    def test_severity_buckets_and_ok(self):
        report = LintReport(diagnostics=[
            diag(severity="error"), diag(code="MMB103", severity="warning"),
            diag(code="MMB204", severity="info"),
        ])
        assert len(report.errors) == len(report.warnings) == 1
        assert len(report.infos) == 1
        assert not report.ok
        assert report.codes() == ["MMB101", "MMB103", "MMB204"]

    def test_exit_codes(self):
        errors = LintReport(diagnostics=[diag()])
        warnings = LintReport(diagnostics=[diag(severity="warning")])
        infos = LintReport(diagnostics=[diag(severity="info")])
        assert errors.exit_code() == errors.exit_code(strict=True) == 1
        assert warnings.exit_code() == 0
        assert warnings.exit_code(strict=True) == 1
        assert infos.exit_code(strict=True) == 0
        assert LintReport().exit_code(strict=True) == 0

    def test_extend_merges_and_dedupes_sources(self):
        a = LintReport(diagnostics=[diag()], sources=["x"])
        b = LintReport(diagnostics=[diag(code="MMB102")], sources=["x", "y"],
                       suppressed=2)
        a.extend(b)
        assert len(a) == 2
        assert a.sources == ["x", "y"]
        assert a.suppressed == 2

    def test_apply_baseline_by_code_and_fingerprint(self):
        report = LintReport(diagnostics=[
            diag(code="MMB202", location="kernel[1] 'a'"),
            diag(code="MMB202", location="kernel[9] 'b'"),
            diag(code="MMB101", location="kernel[0] 'c'"),
        ])
        by_code = report.apply_baseline({"MMB202"})
        assert by_code.codes() == ["MMB101"]
        assert by_code.suppressed == 2
        by_print = report.apply_baseline({"MMB202:kernel[1] 'a'"})
        assert len(by_print) == 2

    def test_to_dict_schema(self):
        payload = LintReport(diagnostics=[diag()], sources=["t"]).to_dict()
        assert payload["schema"] == "mmbench-lint/1"
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["code"] == "MMB101"
        json.loads(LintReport().to_json())  # round-trips


class TestBaselineFiles:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_write_then_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        report = LintReport(diagnostics=[diag(), diag(code="MMB202")])
        assert write_baseline(path, report) == 2
        payload = json.loads(path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert load_baseline(path) == {"MMB101:kernel[0]",
                                       "MMB202:kernel[0]"}
        assert report.apply_baseline(load_baseline(path)).diagnostics == []

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something-else/9", "suppress": []}')
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(path)

    def test_rejects_non_string_entries(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": BASELINE_SCHEMA,
                                    "suppress": [1, 2]}))
        with pytest.raises(ValueError, match="list of strings"):
            load_baseline(path)


class TestLintFailure:
    def test_message_inlines_first_errors_and_opt_out(self):
        report = LintReport(diagnostics=[
            diag(location=f"kernel[{i}]") for i in range(5)])
        err = LintFailure(report, what="stored trace 'x'")
        assert err.report is report
        assert "stored trace 'x' failed lint with 5 error(s)" in str(err)
        assert "... 2 more" in str(err)
        assert "lint=False" in str(err)
