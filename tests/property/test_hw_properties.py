"""Property-based tests for the hardware model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.device import DEVICES, JETSON_NANO, RTX_2080TI
from repro.hw.latency import kernel_latency
from repro.hw.memory import thrash_factor
from repro.hw.stalls import stall_breakdown
from repro.hw.counters import derive_counters
from repro.trace.events import KernelCategory, KernelEvent

settings.register_profile("repro-hw", deadline=None, max_examples=60)
settings.load_profile("repro-hw")

kernels = st.builds(
    KernelEvent,
    name=st.just("k"),
    category=st.sampled_from(list(KernelCategory)),
    flops=st.floats(0, 1e12),
    bytes_read=st.floats(0, 1e9),
    bytes_written=st.floats(0, 1e8),
    threads=st.integers(1, 10_000_000),
    coalesced_fraction=st.floats(0.05, 1.0),
    reuse_factor=st.floats(1.0, 64.0),
)

devices = st.sampled_from([DEVICES["2080ti"], DEVICES["nano"], DEVICES["orin"]])


class TestLatencyInvariants:
    @given(kernels, devices)
    def test_latency_positive_and_roofline(self, kernel, device):
        lat = kernel_latency(kernel, device)
        assert lat.total >= device.kernel_fixed_overhead
        assert lat.total == pytest.approx(
            max(lat.compute_time, lat.memory_time) + device.kernel_fixed_overhead)
        assert 0.0 <= lat.occupancy <= 1.0
        assert 0.0 < lat.compute_utilization <= 1.0

    @given(kernels)
    def test_nano_never_faster_than_server(self, kernel):
        assert (kernel_latency(kernel, JETSON_NANO).total
                >= kernel_latency(kernel, RTX_2080TI).total * 0.99)

    @given(kernels, devices, st.floats(1.5, 16.0))
    def test_more_flops_never_faster(self, kernel, device, factor):
        bigger = KernelEvent(
            name=kernel.name, category=kernel.category, flops=kernel.flops * factor,
            bytes_read=kernel.bytes_read, bytes_written=kernel.bytes_written,
            threads=kernel.threads, coalesced_fraction=kernel.coalesced_fraction,
            reuse_factor=kernel.reuse_factor)
        assert (kernel_latency(bigger, device).total
                >= kernel_latency(kernel, device).total - 1e-12)


class TestCounterInvariants:
    @given(kernels, devices)
    def test_counters_in_valid_ranges(self, kernel, device):
        c = derive_counters(kernel, device)
        for name in ("dram_utilization", "achieved_occupancy", "gld_efficiency",
                     "gst_efficiency", "l1_hit_rate", "l2_hit_rate",
                     "l2_read_hit_rate", "l2_write_hit_rate"):
            value = getattr(c, name)
            assert 0.0 <= value <= 1.0, (name, value)
        assert 0.0 <= c.ipc <= device.issue_width
        assert c.dram_read_bytes >= 0.0
        assert c.fp32_ops == kernel.flops


class TestStallInvariants:
    @given(kernels, devices)
    def test_breakdown_is_distribution(self, kernel, device):
        b = stall_breakdown(kernel, device)
        assert all(v >= 0 for v in b.values())
        assert sum(b.values()) == pytest.approx(1.0)


class TestThrashInvariants:
    @given(st.floats(0.0, 50.0))
    def test_bounded_and_at_least_one(self, pressure):
        factor = thrash_factor(pressure)
        assert 1.0 <= factor <= 12.0

    @given(st.floats(0.0, 10.0), st.floats(0.0, 10.0))
    def test_monotone(self, p1, p2):
        lo, hi = sorted((p1, p2))
        assert thrash_factor(lo) <= thrash_factor(hi)
