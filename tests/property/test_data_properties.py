"""Property-based tests for the data substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.generators import ChannelSpec, LatentMultimodalDataset
from repro.data.loader import DataLoader
from repro.data.shapes import ALL_SHAPES, AVMNIST
from repro.data.synthetic import random_batch

settings.register_profile("repro-data", deadline=None, max_examples=25)
settings.load_profile("repro-data")

workload_names = st.sampled_from(sorted(ALL_SHAPES))


class TestGeneratorProperties:
    @given(workload_names, st.integers(1, 9), st.integers(0, 5))
    def test_shapes_always_correct(self, name, n, seed):
        shapes = ALL_SHAPES[name]
        ds = LatentMultimodalDataset(shapes, seed=seed)
        batch, targets = ds.sample(n, seed=seed + 1)
        for spec in shapes.modalities:
            assert batch[spec.name].shape == (n, *spec.shape)
            assert np.isfinite(np.asarray(batch[spec.name], dtype=np.float64)).all()
        assert len(targets) == n

    @given(st.floats(0.1, 4.0), st.floats(0.0, 0.9), st.integers(0, 3))
    def test_channel_specs_never_break_sampling(self, snr, corrupt, seed):
        channels = {m.name: ChannelSpec(snr=snr, corrupt_prob=corrupt)
                    for m in AVMNIST.modalities}
        ds = LatentMultimodalDataset(AVMNIST, channels, seed=seed)
        batch, y = ds.sample(6, seed=seed)
        assert batch["image"].shape == (6, 1, 28, 28)
        assert ((0 <= y) & (y < 10)).all()

    @given(st.integers(0, 4))
    def test_same_seed_reproducible(self, seed):
        a = LatentMultimodalDataset(AVMNIST, seed=seed).sample(3, seed=1)
        b = LatentMultimodalDataset(AVMNIST, seed=seed).sample(3, seed=1)
        np.testing.assert_array_equal(a[0]["audio"], b[0]["audio"])
        np.testing.assert_array_equal(a[1], b[1])


class TestLoaderProperties:
    @given(st.integers(1, 25), st.integers(1, 10), st.booleans())
    def test_loader_partitions_exactly(self, n, batch_size, shuffle):
        batch = {"x": np.arange(n, dtype=np.float32).reshape(n, 1)}
        targets = np.arange(n)
        loader = DataLoader(batch, targets, batch_size=batch_size, shuffle=shuffle)
        seen = np.concatenate([t for _, t in loader])
        assert len(loader) == -(-n // batch_size)
        np.testing.assert_array_equal(np.sort(seen), targets)

    @given(st.integers(1, 25), st.integers(1, 10))
    def test_drop_last_only_full_batches(self, n, batch_size):
        batch = {"x": np.zeros((n, 1), dtype=np.float32)}
        loader = DataLoader(batch, np.arange(n), batch_size=batch_size, drop_last=True)
        for _, t in loader:
            assert len(t) == batch_size


class TestSyntheticProperties:
    @given(workload_names, st.integers(1, 8), st.integers(0, 3))
    def test_random_batch_deterministic(self, name, n, seed):
        shapes = ALL_SHAPES[name]
        a = random_batch(shapes, n, seed=seed)
        b = random_batch(shapes, n, seed=seed)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
