"""Property-based ingest tests over seeded random DAGs.

Each case generates a random graph whose edges only point backward in a
random node permutation (guaranteeing acyclicity), serializes it in
*shuffled* order, and checks the invariants the loader promises: node
count preserved, topological order respected, work descriptors never
negative, and the unknown-op fraction exactly accounted for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.ingest import default_registry, ingest_graph

KNOWN_OPS = ("conv2d", "matmul", "relu", "batch_norm", "softmax",
             "max_pool2d", "add", "mul", "linear")
UNKNOWN_OPS = ("mystery_op", "vendor_special", "fused_magic_kernel")
DTYPES = ("float32", "float16", "int64", "int8")


def random_dag(rng: np.random.Generator, n_nodes: int) -> dict:
    """A random acyclic graph serialized in shuffled (non-topo) order."""
    order = rng.permutation(n_nodes)  # position -> rank in a topo order
    rank_to_id = {int(rank): int(rank) + 1 for rank in range(n_nodes)}
    nodes = []
    for rank in range(n_nodes):
        n_parents = int(rng.integers(0, min(rank, 3) + 1))
        parents = sorted(
            rank_to_id[int(p)]
            for p in rng.choice(rank, size=n_parents, replace=False)
        ) if rank else []
        unknown = rng.random() < 0.3
        name = str(rng.choice(UNKNOWN_OPS if unknown else KNOWN_OPS))
        shape = [int(d) for d in rng.integers(1, 9, size=2)]
        nodes.append({
            "id": rank_to_id[rank],
            "name": name,
            "parents": parents,
            "input_shapes": [shape, shape],
            "input_dtypes": [str(rng.choice(DTYPES))] * 2,
            "output_shapes": [shape],
            "output_dtypes": [str(rng.choice(DTYPES))],
        })
    shuffled = [nodes[int(i)] for i in order]
    return {"schema": "mmbench-eg/1", "name": "random_dag", "nodes": shuffled}


@pytest.mark.parametrize("seed", range(20))
def test_random_dag_invariants(seed):
    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(1, 40))
    graph = random_dag(rng, n_nodes)
    g = ingest_graph(graph)

    # Node count preserved: nothing dropped, nothing invented.
    assert g.report.n_nodes == n_nodes
    assert g.report.n_kernels + g.report.n_host_events == n_nodes
    assert len(g.topo_order) == n_nodes
    assert sorted(g.topo_order) == sorted(n["id"] for n in graph["nodes"])

    # Topological order respected: every parent precedes its child.
    position = {node_id: i for i, node_id in enumerate(g.topo_order)}
    for node in graph["nodes"]:
        for parent in node["parents"]:
            assert position[parent] < position[node["id"]], (parent, node["id"])

    # Emission follows the topo order, with dense sequential seq.
    assert [k.seq for k in g.trace.kernels] == list(range(n_nodes))

    # Work descriptors are always finite and non-negative.
    columns = g.trace.columns()
    for name in ("flops", "bytes_read", "bytes_written"):
        values = getattr(columns, name)
        assert np.all(values >= 0.0), name
        assert np.all(np.isfinite(values)), name
    assert np.all(columns.threads >= 1)

    # Unknown-op accounting is exact.
    registry = default_registry()
    expected_unknown = sum(
        1 for node in graph["nodes"] if registry.resolve(node["name"]) is None)
    assert g.report.unknown_count == expected_unknown
    assert g.report.unknown_fraction == pytest.approx(
        expected_unknown / n_nodes)
    assert set(g.report.unknown_ops) <= set(UNKNOWN_OPS)


@pytest.mark.parametrize("seed", range(5))
def test_ingest_is_deterministic(seed):
    rng = np.random.default_rng(100 + seed)
    graph = random_dag(rng, int(rng.integers(2, 30)))
    a = ingest_graph(graph)
    b = ingest_graph(graph)
    assert a.topo_order == b.topo_order
    assert np.array_equal(a.trace.columns().flops, b.trace.columns().flops)
    assert a.report.to_dict() == b.report.to_dict()
