"""Property-based tests for the autodiff core (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import functional as F
from repro.nn.tensor import Tensor

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


small_shapes = hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5)


def floats_array(shape):
    return hnp.arrays(np.float32, shape,
                      elements=st.floats(-3.0, 3.0, width=32, allow_nan=False))


@st.composite
def tensor_pair_same_shape(draw):
    shape = draw(small_shapes)
    a = draw(floats_array(shape))
    b = draw(floats_array(shape))
    return Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)


class TestAlgebraicIdentities:
    @given(tensor_pair_same_shape())
    def test_addition_commutes(self, pair):
        a, b = pair
        np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5)

    @given(tensor_pair_same_shape())
    def test_mul_grad_symmetry(self, pair):
        a, b = pair
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a.data, rtol=1e-5)

    @given(tensor_pair_same_shape())
    def test_sum_rule(self, pair):
        """grad(a+b wrt a) is ones regardless of values."""
        a, b = pair
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(a.data))

    @given(small_shapes.flatmap(floats_array))
    def test_relu_idempotent(self, arr):
        once = F.relu(Tensor(arr)).data
        twice = F.relu(F.relu(Tensor(arr))).data
        np.testing.assert_allclose(once, twice)

    @given(small_shapes.flatmap(floats_array))
    def test_tanh_odd_function(self, arr):
        np.testing.assert_allclose(
            F.tanh(Tensor(arr)).data, -F.tanh(Tensor(-arr)).data, atol=1e-6)

    @given(small_shapes.flatmap(floats_array))
    def test_sigmoid_symmetry(self, arr):
        s_pos = F.sigmoid(Tensor(arr)).data
        s_neg = F.sigmoid(Tensor(-arr)).data
        np.testing.assert_allclose(s_pos + s_neg, np.ones_like(arr), atol=1e-5)


class TestSoftmaxInvariants:
    @given(hnp.arrays(np.float32, (3, 7), elements=st.floats(-20, 20, width=32)))
    def test_rows_are_distributions(self, arr):
        s = F.softmax(Tensor(arr), axis=-1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(3), rtol=1e-4)

    @given(hnp.arrays(np.float32, (2, 5), elements=st.floats(-10, 10, width=32)),
           st.floats(-5, 5))
    def test_shift_invariance(self, arr, shift):
        a = F.softmax(Tensor(arr), axis=-1).data
        b = F.softmax(Tensor(arr + np.float32(shift)), axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-5)

    @given(hnp.arrays(np.float32, (2, 5), elements=st.floats(-10, 10, width=32)))
    def test_softmax_grad_of_sum_is_zero(self, arr):
        """sum(softmax(x)) == 1, so its gradient must vanish."""
        x = Tensor(arr, requires_grad=True)
        F.softmax(x, axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros_like(arr), atol=1e-4)


class TestBroadcastReduction:
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_broadcast_grad_shape_always_matches(self, n, m):
        a = Tensor(np.ones((n, m), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((m,), dtype=np.float32), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (n, m)
        assert b.grad.shape == (m,)
        np.testing.assert_allclose(b.grad, np.full(m, float(n)))

    @given(small_shapes.flatmap(floats_array))
    def test_reshape_roundtrip_grad_identity(self, arr):
        x = Tensor(arr, requires_grad=True)
        F.reshape(F.reshape(x, (-1,)), arr.shape).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(arr))


class TestMatmulProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_linearity_in_first_argument(self, n, k, m):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, k)).astype(np.float32)
        b = rng.standard_normal((k, m)).astype(np.float32)
        double = F.matmul(Tensor(a * 2), Tensor(b)).data
        single = F.matmul(Tensor(a), Tensor(b)).data
        np.testing.assert_allclose(double, 2 * single, rtol=1e-4)

    @given(st.integers(1, 3), st.integers(1, 3))
    def test_outer_product_rank_one(self, n, m):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((1, n)).astype(np.float32)
        b = rng.standard_normal((1, m)).astype(np.float32)
        out = F.outer_product(Tensor(a), Tensor(b)).data[0]
        assert np.linalg.matrix_rank(out.astype(np.float64), tol=1e-5) <= 1
