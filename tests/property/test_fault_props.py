"""Fault-injection invariants: empty-plan bit-identity and conservation.

Two properties anchor the fault subsystem:

1. An **empty fault plan is a no-op**: threading ``faults=FaultPlan()``
   (and a retry policy with no deadline) through the event loop must
   reproduce the fault-free schedule *bit-identically* — same makespan,
   same per-request timings, same histograms — across seeds, policies
   and scenarios.
2. **Requests are never lost**: under any valid fault plan,
   ``completed + shed == issued`` and every non-shed request has finite,
   fully-decomposed timings.
"""

import math

import numpy as np
import pytest

from repro.serving import (
    AdaptiveSLOPolicy,
    DeviceDown,
    DeviceRecover,
    FaultPlan,
    FixedBatchPolicy,
    RetryPolicy,
    TenantSpec,
    ThermalThrottle,
    TimeoutBatchPolicy,
    TransientStall,
    chaos_plan,
    simulate,
    simulate_mixed,
    validate_fault_plan,
)

DEVICES = ("a", "b")


def fast(k: int) -> float:
    return 40e-6 + 8e-6 * k


def slow(k: int) -> float:
    return 200e-6 + 40e-6 * k


def tenants():
    return [
        TenantSpec("fast", fast, FixedBatchPolicy(8), slo=10e-3),
        TenantSpec("slow", slow, AdaptiveSLOPolicy(50e-3), slo=50e-3),
    ]


def assert_reports_identical(base, faulted):
    """Every scalar and per-request field must match exactly (no approx)."""
    assert faulted.makespan == base.makespan
    assert faulted.throughput == base.throughput
    assert faulted.mean_latency == base.mean_latency
    assert faulted.p50_latency == base.p50_latency
    assert faulted.p99_latency == base.p99_latency
    assert faulted.mean_formation_wait == base.mean_formation_wait
    for slot in base.device_stats:
        b, f = base.device_stats[slot], faulted.device_stats[slot]
        assert f.batch_histogram == b.batch_histogram
        assert f.busy_time == b.busy_time
    for rb, rf in zip(base.requests, faulted.requests):
        assert rf.arrival == rb.arrival
        assert rf.dispatch == rb.dispatch
        assert rf.finish == rb.finish
        assert rf.batch_size == rb.batch_size
        assert rf.retries == 0 and not rf.shed


def random_plan(rng) -> FaultPlan:
    """A random valid plan: throttles, stalls, and down/up pairs on 'a'."""
    events = []
    t = 0.0
    for _ in range(rng.integers(1, 5)):
        t += float(rng.uniform(1e-3, 0.03))
        kind = rng.integers(0, 3)
        if kind == 0:
            end = t + float(rng.uniform(1e-3, 0.05))
            events.append(ThermalThrottle(
                rng.choice(DEVICES), t, end,
                factor=float(rng.uniform(1.1, 4.0))))
        elif kind == 1:
            events.append(TransientStall(
                rng.choice(DEVICES), t,
                duration=float(rng.uniform(1e-3, 0.02))))
        else:
            end = t + float(rng.uniform(1e-3, 0.05))
            events.append(DeviceDown("a", t))
            events.append(DeviceRecover("a", end))
            t = end  # keep down windows disjoint
    return FaultPlan(tuple(events))


class TestEmptyPlanBitIdentity:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("policy", [
        lambda: FixedBatchPolicy(8),
        lambda: TimeoutBatchPolicy(16, 1e-3),
        lambda: AdaptiveSLOPolicy(20e-3),
    ])
    def test_simulate_single(self, seed, policy):
        base = simulate(fast, policy(), devices=DEVICES, n_requests=600,
                        arrival_rate=30_000.0, seed=seed)
        faulted = simulate(fast, policy(), devices=DEVICES, n_requests=600,
                           arrival_rate=30_000.0, seed=seed,
                           faults=FaultPlan(), retry=RetryPolicy())
        assert_reports_identical(base, faulted)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("scenario", ["uniform", "heavy-head"])
    def test_simulate_mixed(self, seed, scenario):
        base = simulate_mixed(tenants(), devices=DEVICES, n_requests=800,
                              arrival_rate=20_000.0, scenario=scenario,
                              seed=seed)
        faulted = simulate_mixed(tenants(), devices=DEVICES, n_requests=800,
                                 arrival_rate=20_000.0, scenario=scenario,
                                 seed=seed, faults=FaultPlan(),
                                 retry=RetryPolicy())
        assert_reports_identical(base, faulted)
        for name in base.tenant_stats:
            b, f = base.tenant_stats[name], faulted.tenant_stats[name]
            assert f.p99_latency == b.p99_latency
            assert f.slo_attainment == b.slo_attainment

    def test_closed_batch_identity(self):
        base = simulate(fast, FixedBatchPolicy(16), devices=DEVICES,
                        n_requests=500)
        faulted = simulate(fast, FixedBatchPolicy(16), devices=DEVICES,
                           n_requests=500, faults=FaultPlan())
        assert_reports_identical(base, faulted)


class TestConservation:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_plans_never_lose_requests(self, seed):
        rng = np.random.default_rng(seed)
        plan = random_plan(rng)
        validate_fault_plan(plan, DEVICES)
        report = simulate(fast, FixedBatchPolicy(8), devices=DEVICES,
                          n_requests=700, arrival_rate=40_000.0, seed=seed,
                          faults=plan,
                          retry=RetryPolicy(max_retries=int(rng.integers(0, 4))))
        fs = report.fault_stats
        assert fs.completed + fs.shed == fs.issued == 700
        shed = sum(1 for r in report.requests if r.shed)
        assert shed == fs.shed
        for r in report.requests:
            if r.shed:
                continue
            assert math.isfinite(r.latency) and r.latency >= 0
            assert math.isfinite(r.finish) and r.finish >= r.dispatch >= r.arrival

    @pytest.mark.parametrize("seed", range(4))
    def test_random_plans_with_deadline(self, seed):
        rng = np.random.default_rng(100 + seed)
        plan = random_plan(rng)
        report = simulate(fast, FixedBatchPolicy(8), devices=DEVICES,
                          n_requests=700, arrival_rate=60_000.0, seed=seed,
                          faults=plan,
                          retry=RetryPolicy(deadline=float(rng.uniform(2e-3, 2e-2))))
        fs = report.fault_stats
        assert fs.completed + fs.shed == fs.issued == 700

    @pytest.mark.parametrize("name", ["single-failure", "rolling-restart",
                                      "thermal-brownout", "flaky-device"])
    def test_chaos_scenarios_conserve_mixed(self, name):
        plan = chaos_plan(name, DEVICES, horizon=0.05, seed=1)
        report = simulate_mixed(tenants(), devices=DEVICES, n_requests=900,
                                arrival_rate=18_000.0, seed=1, faults=plan,
                                retry=RetryPolicy())
        fs = report.fault_stats
        assert fs.completed + fs.shed == fs.issued == 900
        assert report.completed == fs.completed
