"""Fleet-simulator invariants under randomized configurations.

The anchor property: **completions are conserved**. Whatever the random
combination of groups, pools, autoscale policy, fault windows and
policy mix, every issued request completes exactly once — scale-in
drains, group downs reroute, and the report's accounting (per-group
requests, per-tenant requests) sums back to the stream.
"""

from __future__ import annotations

import numpy as np

from repro.serving import (
    AdaptiveSLOPolicy,
    AutoscalePolicy,
    DeviceGroup,
    FixedBatchPolicy,
    TenantSpec,
    TimeoutBatchPolicy,
    simulate_fleet,
)
from repro.serving.faults import DeviceDown, DeviceRecover, FaultPlan

DEVICES = ("2080ti", "orin", "nano")
SPEED = {"2080ti": 1.0, "orin": 1.7, "nano": 3.0}


class GradedCost:
    def __init__(self, scale):
        self.scale = scale

    def latency(self, device, batch_size):
        return self.scale * SPEED[device] * (0.002 + 0.0008 * batch_size)


def random_policy(rng):
    kind = rng.integers(0, 3)
    if kind == 0:
        return FixedBatchPolicy(int(rng.integers(1, 17)))
    if kind == 1:
        return TimeoutBatchPolicy(int(rng.integers(2, 17)),
                                  float(rng.uniform(0.001, 0.01)))
    return AdaptiveSLOPolicy(float(rng.uniform(0.02, 0.1)))


def random_fleet(rng):
    n_groups = int(rng.integers(1, len(DEVICES) + 1))
    devices = rng.permutation(DEVICES)[:n_groups]
    groups = []
    for device in devices:
        replicas = int(rng.integers(1, 5))
        pool = replicas + int(rng.integers(0, 5))
        groups.append(DeviceGroup(str(device), replicas, pool=pool))
    return tuple(groups)


def random_autoscale(rng):
    if rng.random() < 0.25:
        return None
    return AutoscalePolicy(
        metric="queue" if rng.random() < 0.7 else "p99",
        threshold=float(rng.uniform(1.0, 200.0)),
        interval=float(rng.uniform(0.01, 0.1)),
        cooldown=float(rng.uniform(0.0, 0.3)),
        step=int(rng.integers(1, 3)),
        min_replicas=1,
        idle_fraction=float(rng.uniform(0.25, 1.0)),
    )


def random_faults(rng, groups, horizon):
    # Down/recover windows for a strict subset of groups (at least one
    # group must stay up or the plan validator rejects it).
    if len(groups) < 2 or rng.random() < 0.5:
        return None
    events = []
    for group in groups[1:]:
        if rng.random() < 0.5:
            continue
        start = float(rng.uniform(0.0, horizon * 0.6))
        end = start + float(rng.uniform(0.05, horizon * 0.3))
        events.append(DeviceDown(time=start, device=group.device))
        events.append(DeviceRecover(time=end, device=group.device))
    return FaultPlan(events=tuple(events)) if events else None


def test_completions_conserved_across_random_autoscale_timelines():
    rng = np.random.default_rng(20260808)
    for trial in range(25):
        tenants = [
            TenantSpec(name=f"t{i}", cost=GradedCost(float(rng.uniform(0.5, 2.0))),
                       policy=random_policy(rng), slo=0.05,
                       weight=float(rng.uniform(0.5, 3.0)))
            for i in range(int(rng.integers(1, 4)))
        ]
        groups = random_fleet(rng)
        n = int(rng.integers(500, 4_000))
        rate = float(rng.uniform(200.0, 3_000.0))
        horizon = n / rate
        report = simulate_fleet(
            tenants, groups, n_requests=n, arrival_rate=rate,
            seed=int(rng.integers(0, 1_000)),
            autoscale=random_autoscale(rng),
            faults=random_faults(rng, groups, horizon),
            hop_bytes=float(rng.choice([0.0, 1e5, 1e6])),
        )
        context = f"trial {trial}"
        assert report.completed == n, context
        assert sum(s.requests for s in report.group_stats.values()) == n, context
        assert sum(s.n_requests for s in report.tenant_stats.values()) == n, context
        assert np.isfinite(report.makespan), context
        assert report.latencies.size == n, context
        assert float(report.latencies.min(initial=np.inf)) >= 0.0 or n == 0, context
        # Scaling actions always respect the provisioned pool and the floor.
        for event in report.scaling_events:
            group = next(g for g in groups if g.device == event.group)
            assert 1 <= event.after <= group.capacity, context
