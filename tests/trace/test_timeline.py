"""Timeline aggregations and trace scaling."""

import pytest

from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.timeline import (
    hotspot_kernels,
    kernel_category_breakdown,
    modality_work,
    scale_trace,
    stage_work,
)
from repro.trace.tracer import Trace


def k(name, cat, flops, stage="encoder", modality=None, bytes_read=8.0, bytes_written=4.0):
    return KernelEvent(name=name, category=cat, flops=flops, bytes_read=bytes_read,
                       bytes_written=bytes_written, threads=16, stage=stage, modality=modality)


@pytest.fixture
def trace():
    return Trace(
        kernels=[
            k("conv", KernelCategory.CONV, 100.0, "encoder", "image"),
            k("gemm", KernelCategory.GEMM, 50.0, "encoder", "audio"),
            k("add", KernelCategory.ELEWISE, 10.0, "fusion"),
            k("gemm2", KernelCategory.GEMM, 40.0, "head"),
        ],
        host_events=[HostEvent(kind=HostOpKind.H2D, bytes=128.0)],
    )


class TestBreakdowns:
    def test_flops_breakdown_sums_to_one(self, trace):
        shares = kernel_category_breakdown(trace.kernels)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[KernelCategory.CONV] == pytest.approx(0.5)

    def test_count_weighting(self, trace):
        shares = kernel_category_breakdown(trace.kernels, weight="count")
        assert shares[KernelCategory.GEMM] == pytest.approx(0.5)

    def test_bytes_weighting(self, trace):
        shares = kernel_category_breakdown(trace.kernels, weight="bytes")
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_weight_raises(self, trace):
        with pytest.raises(ValueError, match="unknown weight"):
            kernel_category_breakdown(trace.kernels, weight="time")

    def test_empty_returns_empty(self):
        assert kernel_category_breakdown([]) == {}

    def test_stage_work(self, trace):
        work = stage_work(trace)
        assert work["encoder"]["flops"] == 150.0
        assert work["fusion"]["kernels"] == 1.0

    def test_modality_work(self, trace):
        work = modality_work(trace)
        assert set(work) == {"image", "audio"}
        assert work["image"]["flops"] == 100.0

    def test_hotspots_sorted(self, trace):
        top = hotspot_kernels(trace.kernels, KernelCategory.GEMM, top=1)
        assert top[0].name == "gemm"


class TestScaleTrace:
    def test_scales_work(self, trace):
        scaled = scale_trace(trace, 4.0)
        assert scaled.total_flops == pytest.approx(trace.total_flops * 4)
        assert scaled.total_bytes == pytest.approx(trace.total_bytes * 4)
        assert scaled.host_events[0].bytes == pytest.approx(512.0)

    def test_preserves_structure(self, trace):
        scaled = scale_trace(trace, 2.0)
        assert scaled.stages() == trace.stages()
        assert scaled.modalities() == trace.modalities()
        assert [kx.category for kx in scaled.kernels] == [kx.category for kx in trace.kernels]

    def test_original_untouched(self, trace):
        before = trace.total_flops
        scale_trace(trace, 10.0)
        assert trace.total_flops == before

    def test_invalid_factor_raises(self, trace):
        with pytest.raises(ValueError, match="positive"):
            scale_trace(trace, 0.0)

    def test_threads_at_least_one(self, trace):
        scaled = scale_trace(trace, 1e-9)
        assert all(kx.threads >= 1 for kx in scaled.kernels)

    def test_negative_factor_raises(self, trace):
        with pytest.raises(ValueError, match="positive"):
            scale_trace(trace, -2.0)

    def test_fractional_factor(self, trace):
        scaled = scale_trace(trace, 0.5)
        assert scaled.total_flops == pytest.approx(trace.total_flops * 0.5)
        assert scaled.kernels[0].bytes_read == pytest.approx(4.0)
        assert scaled.kernels[0].bytes_written == pytest.approx(2.0)
        # Thread counts truncate toward zero but never below one.
        assert scaled.kernels[0].threads == 8

    def test_host_event_bytes_scale_but_identity_does_not(self, trace):
        scaled = scale_trace(trace, 3.0)
        src, dst = trace.host_events[0], scaled.host_events[0]
        assert dst.bytes == pytest.approx(src.bytes * 3.0)
        assert (dst.kind, dst.stage, dst.modality, dst.seq, dst.name) == (
            src.kind, src.stage, src.modality, src.seq, src.name)

    def test_metadata_preserved_and_copied(self):
        ev = KernelEvent(name="gemm", category=KernelCategory.GEMM, flops=10.0,
                         bytes_read=8.0, bytes_written=4.0, threads=4,
                         stage="fusion", modality="image", seq=7,
                         coalesced_fraction=0.7, reuse_factor=3.0,
                         meta={"m": 2, "n": 3})
        host = HostEvent(kind=HostOpKind.SYNC, bytes=0.0, stage="fusion",
                         seq=8, name="sync:x", meta={"note": "barrier"})
        scaled = scale_trace(Trace(kernels=[ev], host_events=[host]), 2.0)
        out = scaled.kernels[0]
        assert (out.name, out.stage, out.modality, out.seq) == ("gemm", "fusion", "image", 7)
        assert (out.coalesced_fraction, out.reuse_factor) == (0.7, 3.0)
        assert out.meta == {"m": 2, "n": 3}
        assert scaled.host_events[0].meta == {"note": "barrier"}
        # The copies are deep: mutating the scaled trace leaves the source alone.
        out.meta["m"] = 99
        scaled.host_events[0].meta["note"] = "changed"
        assert ev.meta["m"] == 2
        assert host.meta["note"] == "barrier"


class TestKernelEvent:
    def test_arithmetic_intensity(self):
        ev = k("a", KernelCategory.GEMM, 100.0, bytes_read=40.0, bytes_written=10.0)
        assert ev.arithmetic_intensity == pytest.approx(2.0)
        assert ev.bytes_total == pytest.approx(50.0)

    def test_zero_bytes_intensity(self):
        ev = k("a", KernelCategory.GEMM, 100.0, bytes_read=0.0, bytes_written=0.0)
        assert ev.arithmetic_intensity == float("inf")
        ev2 = k("b", KernelCategory.OTHER, 0.0, bytes_read=0.0, bytes_written=0.0)
        assert ev2.arithmetic_intensity == 0.0
