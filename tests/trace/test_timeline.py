"""Timeline aggregations and trace scaling."""

import pytest

from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.timeline import (
    hotspot_kernels,
    kernel_category_breakdown,
    modality_work,
    scale_trace,
    stage_work,
)
from repro.trace.tracer import Trace


def k(name, cat, flops, stage="encoder", modality=None, bytes_read=8.0, bytes_written=4.0):
    return KernelEvent(name=name, category=cat, flops=flops, bytes_read=bytes_read,
                       bytes_written=bytes_written, threads=16, stage=stage, modality=modality)


@pytest.fixture
def trace():
    return Trace(
        kernels=[
            k("conv", KernelCategory.CONV, 100.0, "encoder", "image"),
            k("gemm", KernelCategory.GEMM, 50.0, "encoder", "audio"),
            k("add", KernelCategory.ELEWISE, 10.0, "fusion"),
            k("gemm2", KernelCategory.GEMM, 40.0, "head"),
        ],
        host_events=[HostEvent(kind=HostOpKind.H2D, bytes=128.0)],
    )


class TestBreakdowns:
    def test_flops_breakdown_sums_to_one(self, trace):
        shares = kernel_category_breakdown(trace.kernels)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[KernelCategory.CONV] == pytest.approx(0.5)

    def test_count_weighting(self, trace):
        shares = kernel_category_breakdown(trace.kernels, weight="count")
        assert shares[KernelCategory.GEMM] == pytest.approx(0.5)

    def test_bytes_weighting(self, trace):
        shares = kernel_category_breakdown(trace.kernels, weight="bytes")
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_weight_raises(self, trace):
        with pytest.raises(ValueError, match="unknown weight"):
            kernel_category_breakdown(trace.kernels, weight="time")

    def test_empty_returns_empty(self):
        assert kernel_category_breakdown([]) == {}

    def test_stage_work(self, trace):
        work = stage_work(trace)
        assert work["encoder"]["flops"] == 150.0
        assert work["fusion"]["kernels"] == 1.0

    def test_modality_work(self, trace):
        work = modality_work(trace)
        assert set(work) == {"image", "audio"}
        assert work["image"]["flops"] == 100.0

    def test_hotspots_sorted(self, trace):
        top = hotspot_kernels(trace.kernels, KernelCategory.GEMM, top=1)
        assert top[0].name == "gemm"


class TestScaleTrace:
    def test_scales_work(self, trace):
        scaled = scale_trace(trace, 4.0)
        assert scaled.total_flops == pytest.approx(trace.total_flops * 4)
        assert scaled.total_bytes == pytest.approx(trace.total_bytes * 4)
        assert scaled.host_events[0].bytes == pytest.approx(512.0)

    def test_preserves_structure(self, trace):
        scaled = scale_trace(trace, 2.0)
        assert scaled.stages() == trace.stages()
        assert scaled.modalities() == trace.modalities()
        assert [kx.category for kx in scaled.kernels] == [kx.category for kx in trace.kernels]

    def test_original_untouched(self, trace):
        before = trace.total_flops
        scale_trace(trace, 10.0)
        assert trace.total_flops == before

    def test_invalid_factor_raises(self, trace):
        with pytest.raises(ValueError, match="positive"):
            scale_trace(trace, 0.0)

    def test_threads_at_least_one(self, trace):
        scaled = scale_trace(trace, 1e-9)
        assert all(kx.threads >= 1 for kx in scaled.kernels)


class TestKernelEvent:
    def test_arithmetic_intensity(self):
        ev = k("a", KernelCategory.GEMM, 100.0, bytes_read=40.0, bytes_written=10.0)
        assert ev.arithmetic_intensity == pytest.approx(2.0)
        assert ev.bytes_total == pytest.approx(50.0)

    def test_zero_bytes_intensity(self):
        ev = k("a", KernelCategory.GEMM, 100.0, bytes_read=0.0, bytes_written=0.0)
        assert ev.arithmetic_intensity == float("inf")
        ev2 = k("b", KernelCategory.OTHER, 0.0, bytes_read=0.0, bytes_written=0.0)
        assert ev2.arithmetic_intensity == 0.0
