"""Golden-fixture tests: hand-written graphs with hand-computed expectations.

Every number asserted here was computed by hand from the estimator
formulas documented in ``docs/ingest.md`` — the fixtures pin the op
mapping, the FLOP/byte estimators, the pass taxonomy, and the
unknown-bucket accounting against silent drift.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.trace.events import KernelCategory
from repro.trace.ingest import IngestError, STAGE_UNKNOWN, ingest_graph

FIXTURES = Path(__file__).parent.parent / "fixtures" / "execution_graphs"


def load(name):
    return ingest_graph(str(FIXTURES / name))


class TestCnnForward:
    """Pure-forward CNN with explicit stages and an H2D host node."""

    def test_counts_and_flops(self):
        g = load("cnn_forward.json")
        assert g.report.n_nodes == 6
        assert g.report.n_kernels == 5
        assert g.report.n_host_events == 1
        # conv 2*256*27 + bnorm 5*256 + relu 256 + pool 256 + linear 2*10*64
        assert g.trace.total_flops == 13824 + 1280 + 256 + 256 + 1280 == 16896

    def test_categories(self):
        g = load("cnn_forward.json")
        cats = [k.category for k in g.trace.kernels]
        assert cats == [KernelCategory.CONV, KernelCategory.BNORM,
                        KernelCategory.RELU, KernelCategory.POOLING,
                        KernelCategory.GEMM]

    def test_pure_forward_no_unknowns(self):
        g = load("cnn_forward.json")
        assert g.report.pass_counts == {"forward": 5}
        assert g.report.unknown_count == 0
        assert g.report.unknown_fraction == 0.0
        assert g.report.unknown_stage_kernels == 0

    def test_explicit_attribution_honored(self):
        g = load("cnn_forward.json")
        assert g.trace.stages() == ["encoder", "head"]
        assert g.trace.kernels[0].modality == "image"
        assert g.trace.host_events[0].bytes == 768

    def test_model_metadata(self):
        g = load("cnn_forward.json")
        assert g.parameters == 758
        assert g.parameter_bytes == 3032
        assert g.input_bytes == 768
        assert g.modalities == ["image"]

    def test_conv_bytes_from_dtypes(self):
        g = load("cnn_forward.json")
        conv = g.trace.kernels[0]
        assert conv.bytes_read == (192 + 108) * 4
        assert conv.bytes_written == 256 * 4


class TestTransformerTrain:
    """Transformer block + autograd backward ops + optimizer step."""

    def test_pass_split(self):
        g = load("transformer_train.json")
        assert g.report.n_kernels == 11
        assert g.report.pass_counts == {
            "forward": 5, "loss": 1, "backward": 4, "optimizer": 1}
        assert g.trace.passes() == ["forward", "loss", "backward", "optimizer"]

    def test_pinned_flop_total(self):
        g = load("transformer_train.json")
        per_node = [65536, 32768, 512, 32768, 5120,   # forward
                    1056,                              # loss
                    1024, 32768, 512, 1024,            # backward
                    1024]                              # optimizer
        assert [k.flops for k in g.trace.kernels] == per_node
        assert g.trace.total_flops == sum(per_node) == 174112

    def test_accumulate_grad_is_the_only_unknown(self):
        g = load("transformer_train.json")
        assert g.report.unknown_ops == {"AccumulateGrad": 1}
        assert g.report.unknown_fraction == pytest.approx(1 / 11)
        accumulate = [k for k in g.trace.kernels if k.name == "AccumulateGrad"]
        assert accumulate[0].category == KernelCategory.OTHER
        assert accumulate[0].pass_ == "backward"

    def test_stage_heuristics_fill_unknown_bucket(self):
        g = load("transformer_train.json")
        # No explicit stages: everything except the optimizer step (whose
        # rule pins stage=optimizer) lands in the reported unknown bucket.
        assert g.report.unknown_stage_kernels == 10
        assert set(g.trace.stages()) == {STAGE_UNKNOWN, "optimizer"}

    def test_mixed_dtype_loss_bytes(self):
        g = load("transformer_train.json")
        loss = [k for k in g.trace.kernels if k.name == "cross_entropy_loss"][0]
        assert loss.bytes_read == 1024 * 4 + 32 * 8  # float32 logits + int64 targets


class TestUnknownOps:
    def test_half_unknown(self):
        g = load("unknown_ops.json")
        assert g.report.n_kernels == 4
        assert g.report.unknown_ops == {"my_custom_op": 1, "fused_magic_kernel": 1}
        assert g.report.unknown_fraction == 0.5
        assert g.trace.total_flops == 256 + 16 + 16 + 8 == 296

    def test_summary_surfaces_unknown_names(self):
        g = load("unknown_ops.json")
        text = "\n".join(g.report.summary_lines())
        assert "50.0%" in text
        assert "my_custom_op" in text and "fused_magic_kernel" in text


class TestEmptyGraph:
    def test_ingests_and_prices_cleanly(self):
        g = load("empty.json")
        assert g.report.n_kernels == 0
        assert g.report.unknown_fraction == 0.0
        assert g.trace.total_flops == 0.0
        report = ExecutionEngine(get_device("2080ti")).run(
            g.trace, model_bytes=0, input_bytes=0)
        assert report.total_time >= 0.0


class TestMalformedFixtures:
    def test_cyclic_graph_raises_structured_error(self):
        with pytest.raises(IngestError, match="cycle") as excinfo:
            load("cyclic.json")
        assert excinfo.value.node_id is not None

    def test_missing_parent_names_offender(self):
        with pytest.raises(IngestError, match="unknown parent") as excinfo:
            load("missing_parent.json")
        assert excinfo.value.node_id == 2
        assert "99" in str(excinfo.value)


class TestFixturesPriceEndToEnd:
    @pytest.mark.parametrize("name", [
        "cnn_forward.json", "transformer_train.json", "unknown_ops.json"])
    def test_positive_latency_on_every_device_class(self, name):
        g = load(name)
        for device in ("2080ti", "orin", "nano"):
            report = ExecutionEngine(get_device(device)).run(
                g.trace, model_bytes=g.parameter_bytes, input_bytes=g.input_bytes)
            assert report.total_time > 0.0
