"""Tracer: activation, context nesting, event capture."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.trace.events import HostOpKind, KernelCategory
from repro.trace.tracer import (
    Tracer,
    active_tracer,
    emit_host,
    emit_kernel,
    modality_scope,
    stage_scope,
)


class TestActivation:
    def test_inactive_by_default(self):
        assert active_tracer() is None

    def test_activate_and_finish(self):
        tracer = Tracer()
        with tracer.activate():
            assert active_tracer() is tracer
            emit_kernel("k", KernelCategory.ELEWISE, 1, 1, 1, 1)
        assert active_tracer() is None
        trace = tracer.finish()
        assert len(trace.kernels) == 1

    def test_double_activation_raises(self):
        t1, t2 = Tracer(), Tracer()
        with t1.activate():
            with pytest.raises(RuntimeError, match="already active"):
                with t2.activate():
                    pass

    def test_emit_noop_when_inactive(self):
        # Must not raise and must not record anywhere.
        emit_kernel("k", KernelCategory.GEMM, 1, 1, 1, 1)
        emit_host(HostOpKind.SYNC)

    def test_finish_resets(self):
        tracer = Tracer()
        with tracer.activate():
            emit_kernel("k", KernelCategory.GEMM, 1, 1, 1, 1)
        tracer.finish()
        assert len(tracer.finish().kernels) == 0


class TestContexts:
    def test_stage_and_modality_recorded(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.stage("fusion"), tracer.modality("image"):
                emit_kernel("k", KernelCategory.GEMM, 1, 1, 1, 1)
        trace = tracer.finish()
        assert trace.kernels[0].stage == "fusion"
        assert trace.kernels[0].modality == "image"

    def test_default_stage_is_encoder(self):
        tracer = Tracer()
        with tracer.activate():
            emit_kernel("k", KernelCategory.GEMM, 1, 1, 1, 1)
        assert tracer.finish().kernels[0].stage == "encoder"

    def test_nesting_innermost_wins(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.stage("encoder"):
                with tracer.stage("head"):
                    emit_kernel("k", KernelCategory.GEMM, 1, 1, 1, 1)
                emit_kernel("k2", KernelCategory.GEMM, 1, 1, 1, 1)
        trace = tracer.finish()
        assert trace.kernels[0].stage == "head"
        assert trace.kernels[1].stage == "encoder"

    def test_module_level_scopes_noop_without_tracer(self):
        with stage_scope("fusion"), modality_scope("image"):
            pass  # must not raise

    def test_sequence_numbers_increase(self):
        tracer = Tracer()
        with tracer.activate():
            emit_kernel("a", KernelCategory.GEMM, 1, 1, 1, 1)
            emit_host(HostOpKind.SYNC)
            emit_kernel("b", KernelCategory.GEMM, 1, 1, 1, 1)
        trace = tracer.finish()
        assert trace.kernels[0].seq < trace.host_events[0].seq < trace.kernels[1].seq


class TestFrameworkIntegration:
    def test_ops_emit_kernels(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU())
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(Tensor(rng.standard_normal((2, 4)).astype(np.float32)))
        trace = tracer.finish()
        cats = {k.category for k in trace.kernels}
        assert KernelCategory.GEMM in cats
        assert KernelCategory.RELU in cats

    def test_trace_totals(self):
        tracer = Tracer()
        with tracer.activate():
            emit_kernel("a", KernelCategory.GEMM, flops=10, bytes_read=4, bytes_written=2, threads=1)
            emit_kernel("b", KernelCategory.RELU, flops=5, bytes_read=1, bytes_written=1, threads=1)
        trace = tracer.finish()
        assert trace.total_flops == 15
        assert trace.total_bytes == 8

    def test_stage_and_modality_queries(self):
        tracer = Tracer()
        with tracer.activate():
            with tracer.stage("encoder"), tracer.modality("image"):
                emit_kernel("a", KernelCategory.CONV, 1, 1, 1, 1)
            with tracer.stage("head"):
                emit_kernel("b", KernelCategory.GEMM, 1, 1, 1, 1)
        trace = tracer.finish()
        assert trace.stages() == ["encoder", "head"]
        assert trace.modalities() == ["image"]
        assert len(trace.kernels_in_stage("encoder")) == 1
        assert len(trace.kernels_for_modality("image")) == 1
