"""The meta-backend invariant: traces are event-for-event identical to eager.

This is the contract that makes "trace once, price anywhere" safe to run
on the analytical backend everywhere: if any op's shape inference or
event emission diverges from the eager numpy path, every downstream
number (latency, counters, memory, serving curves) silently drifts. The
differential test below pins the full event tuple — names, categories,
FLOPs, bytes, threads, stages, modalities, ordering — for all nine
registry workloads.
"""

import numpy as np
import pytest

from repro import nn
from repro.data.synthetic import random_batch
from repro.nn.backend import MetaArray, backend_scope, current_backend, meta_array
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload, list_workloads


def kernel_tuple(k):
    return (k.name, k.category, k.flops, k.bytes_read, k.bytes_written,
            k.threads, k.stage, k.modality, k.seq,
            k.coalesced_fraction, k.reuse_factor, dict(k.meta))


def host_tuple(h):
    return (h.kind, h.bytes, h.stage, h.modality, h.seq, h.name)


class TestDifferentialIdentity:
    """Acceptance: meta and eager traces are identical on every workload."""

    @pytest.mark.parametrize("workload", list_workloads())
    def test_event_for_event_identical(self, workload):
        info = get_workload(workload)
        model = info.build(seed=0)
        profiler = MMBenchProfiler()
        eager = profiler.capture(model, random_batch(model.shapes, 3, seed=0))
        meta = profiler.capture(
            model, random_batch(model.shapes, 3, seed=0, backend="meta"))

        assert len(meta.kernels) == len(eager.kernels)
        assert len(meta.host_events) == len(eager.host_events)
        for a, b in zip(eager.kernels, meta.kernels):
            assert kernel_tuple(a) == kernel_tuple(b)
        for a, b in zip(eager.host_events, meta.host_events):
            assert host_tuple(a) == host_tuple(b)
        assert meta.stages() == eager.stages()
        assert meta.modalities() == eager.modalities()
        assert meta.total_flops == eager.total_flops
        assert meta.total_bytes == eager.total_bytes

    def test_unimodal_variant_identical(self):
        info = get_workload("avmnist")
        model = info.build_unimodal("image", seed=0)
        profiler = MMBenchProfiler()
        eager = profiler.capture(model, random_batch(model.shapes, 4, seed=0))
        meta = profiler.capture(
            model, random_batch(model.shapes, 4, seed=0, backend="meta"))
        assert [kernel_tuple(k) for k in meta.kernels] == \
               [kernel_tuple(k) for k in eager.kernels]


class TestTrainingStepDifferential:
    """The invariant extended to full training steps: forward, loss,
    backward and optimizer kernels must be event-for-event identical
    between the eager and meta backends on every workload."""

    @pytest.mark.parametrize("workload", list_workloads())
    def test_training_step_event_for_event_identical(self, workload):
        from repro.profiling.training import trace_training_step

        info = get_workload(workload)
        eager = trace_training_step(info.build(seed=0), batch_size=2, seed=0,
                                    backend="eager")
        meta = trace_training_step(info.build(seed=0), batch_size=2, seed=0,
                                   backend="meta")

        assert len(meta.kernels) == len(eager.kernels)
        assert len(meta.host_events) == len(eager.host_events)
        for a, b in zip(eager.kernels, meta.kernels):
            assert kernel_tuple(a) == kernel_tuple(b)
            assert a.pass_ == b.pass_
        for a, b in zip(eager.host_events, meta.host_events):
            assert host_tuple(a) == host_tuple(b)
        assert meta.passes() == eager.passes() == \
            ["forward", "loss", "backward", "optimizer"]

    def test_meta_training_step_scales_past_memory(self):
        """A training step at a batch far past physical RAM still traces
        on the meta backend (shape-only activations *and* gradients)."""
        from repro.profiling.training import trace_training_step

        info = get_workload("avmnist")
        big = trace_training_step(info.build(seed=0), batch_size=2**18,
                                  seed=0, backend="meta")
        small = trace_training_step(info.build(seed=0), batch_size=1,
                                    seed=0, backend="meta")
        assert len(big.kernels) == len(small.kernels)
        assert big.total_flops > small.total_flops * 10**4


class TestPaperScaleBatches:
    def test_meta_traces_batches_beyond_memory(self):
        """A batch far past physical RAM still traces on the meta backend.

        medical_seg at batch 2**20 would need ~17 GB of raw input alone
        (and far more in activations) eagerly; meta capture carries
        shapes only.
        """
        model = get_workload("medical_seg").build(seed=0)
        batch = random_batch(model.shapes, 2**20, seed=0, backend="meta")
        assert sum(v.nbytes for v in batch.values()) > 16e9
        trace = MMBenchProfiler().capture(model, batch)
        assert trace.total_flops > 0
        small = MMBenchProfiler().capture(
            model, random_batch(model.shapes, 1, seed=0, backend="meta"))
        # Work descriptors scale with the batch; the event count does not.
        assert len(trace.kernels) == len(small.kernels)
        assert trace.total_flops > small.total_flops * 10**5


class TestBackendSelection:
    def test_default_is_eager(self):
        assert current_backend() == "eager"
        batch = random_batch(get_workload("avmnist").shapes, 2, seed=0)
        assert all(isinstance(v, np.ndarray) for v in batch.values())

    def test_backend_scope_switches_and_restores(self):
        shapes = get_workload("avmnist").shapes
        with backend_scope("meta"):
            assert current_backend() == "meta"
            batch = random_batch(shapes, 2, seed=0)
        assert current_backend() == "eager"
        assert all(isinstance(v, MetaArray) for v in batch.values())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with backend_scope("lazy"):
                pass
        with pytest.raises(ValueError, match="unknown backend"):
            random_batch(get_workload("avmnist").shapes, 2, backend="jit")


class TestMetaArraySemantics:
    """Spot checks that shape inference matches numpy exactly."""

    def assert_matches(self, fn, *shapes, dtype=np.float32):
        real = fn(*[np.zeros(s, dtype=dtype) for s in shapes])
        meta = fn(*[meta_array(s, dtype) for s in shapes])
        assert meta.shape == real.shape, fn
        assert meta.dtype == real.dtype, fn

    def test_ufuncs_and_broadcasting(self):
        self.assert_matches(lambda a, b: a + b, (4, 1, 3), (2, 1))
        self.assert_matches(lambda a, b: a * b, (5,), (2, 5))
        self.assert_matches(np.exp, (3, 4))
        self.assert_matches(lambda a: a / 3, (2, 2))
        self.assert_matches(lambda a: 1.0 / (1.0 + np.exp(-a)), (2, 2))

    def test_scalar_promotion_stays_float32(self):
        out = meta_array((3,), np.float32) * 0.5 + 1
        assert out.dtype == np.float32  # NEP-50 weak python scalars

    def test_matmul_shapes(self):
        self.assert_matches(lambda a, b: a @ b, (4, 5), (5, 6))
        self.assert_matches(lambda a, b: a @ b, (2, 3, 4, 5), (5, 6))
        self.assert_matches(lambda a, b: a @ b, (7, 2, 4, 5), (1, 5, 3))
        with pytest.raises(ValueError):
            meta_array((4, 5)) @ meta_array((4, 6))

    def test_reductions(self):
        self.assert_matches(lambda a: a.sum(axis=1), (3, 4, 5))
        self.assert_matches(lambda a: a.max(axis=-1, keepdims=True), (3, 4))
        self.assert_matches(lambda a: a.mean(axis=(2, 3)), (2, 3, 4, 5))
        self.assert_matches(lambda a: a.argmax(axis=-1), (6, 7))
        self.assert_matches(lambda a: a.sum(), (3, 2))

    def test_indexing_and_views(self):
        self.assert_matches(lambda a: a[:, 1], (3, 4, 5))
        self.assert_matches(lambda a: a[..., None], (3, 4))
        self.assert_matches(lambda a: a[:, 0:2, ::2], (3, 4, 6))
        self.assert_matches(lambda a: a.transpose(0, 2, 1), (3, 4, 5))
        self.assert_matches(lambda a: a.reshape(6, -1), (3, 4, 5))
        self.assert_matches(lambda a: a.repeat(2, axis=1), (3, 4))

    def test_structural_functions(self):
        self.assert_matches(lambda a: np.pad(a, ((0, 0), (2, 2))), (3, 4))
        self.assert_matches(
            lambda a: np.lib.stride_tricks.sliding_window_view(a, (2, 2), axis=(2, 3)),
            (1, 2, 5, 5))
        self.assert_matches(lambda a, b: np.concatenate([a, b], axis=1), (2, 3), (2, 4))
        self.assert_matches(lambda a, b: np.stack([a, b], axis=1), (2, 3), (2, 3))
        self.assert_matches(lambda a, b: np.einsum("bm,bn->bmn", a, b), (4, 3), (4, 5))
        self.assert_matches(lambda a: np.where(a > 0, a, 0.1 * a), (3, 4))

    def test_invalid_reshape_raises(self):
        with pytest.raises(ValueError):
            meta_array((3, 4)).reshape(5, -1)

    def test_no_silent_materialization(self):
        m = meta_array((3,))
        with pytest.raises(TypeError, match="no data"):
            np.asarray(m)
        with pytest.raises(TypeError):
            bool(m)
        with pytest.raises(TypeError):
            float(m)

    def test_nbytes_matches_dtype(self):
        assert meta_array((10, 10), np.float32).nbytes == 400
        assert meta_array((10,), np.int64).nbytes == 80


class TestMetaTensors:
    def test_tensor_wraps_meta(self):
        t = nn.Tensor(meta_array((4, 8)))
        assert t.is_meta and t.shape == (4, 8) and t.nbytes == 4 * 8 * 4

    def test_eager_tensor_is_not_meta(self):
        assert not nn.Tensor(np.zeros((2, 2))).is_meta
