"""TraceColumns: construction, caching, materialization, payload, scaling."""

import numpy as np
import pytest

from repro.trace.columns import (
    CATEGORY_ORDER,
    NO_MODALITY,
    TraceColumns,
)
from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.store import TraceStore
from repro.trace.tracer import Trace


def k(name, cat, stage, modality=None, flops=10.0, seq=0, **kw):
    return KernelEvent(name=name, category=cat, flops=flops, bytes_read=8.0,
                       bytes_written=4.0, threads=16, stage=stage,
                       modality=modality, seq=seq, **kw)


@pytest.fixture
def trace():
    return Trace(
        kernels=[
            k("conv", KernelCategory.CONV, "encoder", "image", flops=100.0, seq=0),
            k("gemm", KernelCategory.GEMM, "encoder", "audio", flops=50.0, seq=1,
              coalesced_fraction=0.7, reuse_factor=3.0, meta={"m": 2}),
            k("add", KernelCategory.ELEWISE, "fusion", None, flops=10.0, seq=2),
            k("gemm", KernelCategory.GEMM, "head", None, flops=40.0, seq=3),
        ],
        host_events=[
            HostEvent(kind=HostOpKind.H2D, bytes=128.0, stage="encoder", seq=4),
            HostEvent(kind=HostOpKind.SYNC, stage="fusion", name="sync:f",
                      seq=5, meta={"note": "barrier"}),
        ],
    )


class TestConstruction:
    def test_columns_mirror_events(self, trace):
        cols = trace.columns()
        assert cols.n == 4 and cols.host_n == 2
        assert cols.flops.tolist() == [100.0, 50.0, 10.0, 40.0]
        assert cols.stage_table == ("encoder", "fusion", "head")
        assert cols.modality_table == ("image", "audio")
        assert cols.modality_codes.tolist() == [0, 1, NO_MODALITY, NO_MODALITY]
        assert [CATEGORY_ORDER[c] for c in cols.category_codes] == [
            KernelCategory.CONV, KernelCategory.GEMM,
            KernelCategory.ELEWISE, KernelCategory.GEMM,
        ]
        # "gemm" is interned once, referenced twice.
        assert cols.name_table.count("gemm") == 1
        assert cols.name_codes[1] == cols.name_codes[3]
        assert cols.meta == {1: {"m": 2}}

    def test_columns_cached_on_trace(self, trace):
        assert trace.columns() is trace.columns()

    def test_bytes_total_derived(self, trace):
        assert trace.columns().bytes_total.tolist() == [12.0] * 4

    def test_host_columns(self, trace):
        cols = trace.columns()
        assert cols.host_bytes.tolist() == [128.0, 0.0]
        assert cols.host_stage_codes.tolist() == [0, 1]
        assert cols.host_meta == {1: {"note": "barrier"}}


class TestPassColumns:
    @pytest.fixture
    def training_like(self):
        return Trace(kernels=[
            k("conv", KernelCategory.CONV, "encoder", "image", seq=0),
            k("loss", KernelCategory.REDUCE, "head", None, seq=1, pass_="loss"),
            k("conv_bwd", KernelCategory.CONV, "encoder", "image", seq=2,
              pass_="backward"),
            k("adam_update", KernelCategory.ELEWISE, "optimizer", None, seq=3,
              pass_="optimizer"),
        ])

    def test_pass_codes_and_first_seen_order(self, training_like):
        cols = training_like.columns()
        assert cols.pass_codes.tolist() == [0, 1, 2, 3]
        assert training_like.passes() == ["forward", "loss", "backward",
                                          "optimizer"]

    def test_pass_indices(self, training_like):
        cols = training_like.columns()
        assert cols.kernel_indices_for_pass("backward").tolist() == [2]
        assert cols.kernel_indices_for_pass("nonsense").tolist() == []
        assert [x.name for x in training_like.kernels_in_pass("optimizer")] == \
            ["adam_update"]

    def test_pass_survives_materialize_scale_and_payload(self, training_like):
        cols = training_like.columns()
        assert [e.pass_ for e in cols.materialize_kernels()] == \
            ["forward", "loss", "backward", "optimizer"]
        assert cols.scaled(2.0).pass_codes.tolist() == cols.pass_codes.tolist()
        round_trip = TraceColumns.from_payload(cols.to_payload())
        assert round_trip.pass_codes.tolist() == cols.pass_codes.tolist()
        assert round_trip.host_pass_codes.tolist() == cols.host_pass_codes.tolist()

    def test_inference_trace_is_pure_forward(self, trace):
        assert trace.passes() == ["forward"]
        assert (trace.columns().pass_codes == 0).all()


class TestIndexing:
    def test_stage_indices(self, trace):
        cols = trace.columns()
        assert cols.kernel_indices_in_stage("encoder").tolist() == [0, 1]
        assert cols.kernel_indices_in_stage("nope").tolist() == []

    def test_modality_indices(self, trace):
        cols = trace.columns()
        assert cols.kernel_indices_for_modality("audio").tolist() == [1]

    def test_first_seen_orders(self, trace):
        cols = trace.columns()
        assert cols.kernel_stages() == ["encoder", "fusion", "head"]
        assert cols.kernel_modalities() == ["image", "audio"]

    def test_trace_routes_through_columns(self, trace):
        assert [ev.name for ev in trace.kernels_in_stage("encoder")] == ["conv", "gemm"]
        assert [ev.name for ev in trace.kernels_for_modality("image")] == ["conv"]
        assert trace.total_flops == 200.0
        assert trace.total_bytes == 48.0


class TestMaterialization:
    def test_round_trip(self, trace):
        cols = trace.columns()
        rebuilt = Trace.from_columns(cols)
        for a, b in zip(trace.kernels, rebuilt.kernels):
            assert (a.name, a.category, a.flops, a.bytes_read, a.bytes_written,
                    a.threads, a.stage, a.modality, a.seq, a.coalesced_fraction,
                    a.reuse_factor, a.meta) == \
                   (b.name, b.category, b.flops, b.bytes_read, b.bytes_written,
                    b.threads, b.stage, b.modality, b.seq, b.coalesced_fraction,
                    b.reuse_factor, b.meta)
        for a, b in zip(trace.host_events, rebuilt.host_events):
            assert (a.kind, a.bytes, a.stage, a.modality, a.seq, a.name, a.meta) == \
                   (b.kind, b.bytes, b.stage, b.modality, b.seq, b.name, b.meta)

    def test_lazy_until_accessed(self, trace):
        lazy = Trace.from_columns(trace.columns())
        assert lazy._kernels is None and lazy._host_events is None
        # Columnar consumers never force materialization.
        assert lazy.total_flops == 200.0
        assert lazy.stages() == ["encoder", "fusion", "head"]
        assert lazy._kernels is None
        # Event access materializes once and caches.
        assert lazy.kernels is lazy.kernels
        assert len(lazy.kernels) == 4

    def test_types_are_python_scalars(self, trace):
        ev = Trace.from_columns(trace.columns()).kernels[1]
        assert type(ev.flops) is float and type(ev.threads) is int
        assert type(ev.seq) is int and isinstance(ev.category, KernelCategory)


class TestPayload:
    def test_json_round_trip(self, trace):
        import json

        payload = json.loads(json.dumps(trace.columns().to_payload()))
        cols = TraceColumns.from_payload(payload)
        assert np.array_equal(cols.flops, trace.columns().flops)
        assert cols.stage_table == trace.columns().stage_table
        assert cols.meta == trace.columns().meta
        assert cols.host_meta == trace.columns().host_meta

    def test_store_disk_loads_are_columnar(self, tmp_path):
        warm = TraceStore(tmp_path)
        warm.get_or_capture("avmnist", batch_size=2, backend="meta")
        cold = TraceStore(tmp_path)
        loaded = cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["disk_hits"] == 1
        # The loaded trace is columnar-backed; no events were materialized.
        assert loaded.trace._kernels is None
        assert loaded.trace.columns().n > 0


class TestScaled:
    def test_scaled_columns(self, trace):
        scaled = trace.columns().scaled(2.0)
        assert scaled.flops.tolist() == [200.0, 100.0, 20.0, 80.0]
        assert scaled.threads.tolist() == [32] * 4
        assert scaled.host_bytes.tolist() == [256.0, 0.0]
        # Tables shared, metadata deep-copied.
        assert scaled.stage_table is trace.columns().stage_table
        scaled.meta[1]["m"] = 99
        assert trace.columns().meta[1]["m"] == 2

    def test_threads_floor_at_one(self, trace):
        assert trace.columns().scaled(1e-9).threads.min() == 1

    def test_invalid_factor(self, trace):
        with pytest.raises(ValueError, match="positive"):
            trace.columns().scaled(0.0)
