"""The content-addressed trace store: keys, tiers, stats, persistence."""

import pytest

from repro.serving import PROFILE_STATS, ProfiledCostModel, clear_cost_cache
from repro.trace.store import (
    TraceStore,
    code_fingerprint,
    default_store,
    set_default_store,
    trace_from_payload,
    trace_to_payload,
)


@pytest.fixture(autouse=True)
def fresh_default_store():
    prev = set_default_store(None)
    yield
    set_default_store(prev)


class TestKeys:
    def test_key_is_content_addressed(self):
        store = TraceStore()
        k1 = store.make_key("avmnist", batch_size=8, seed=0, backend="meta")
        k2 = store.make_key("avmnist", batch_size=8, seed=0, backend="meta")
        assert k1 == k2 and k1.digest() == k2.digest()
        assert k1.digest() != store.make_key("avmnist", batch_size=9).digest()

    def test_default_fusion_normalized(self):
        from repro.workloads.registry import get_workload

        store = TraceStore()
        default = get_workload("avmnist").default_fusion
        assert store.make_key("avmnist", fusion=None) == \
               store.make_key("avmnist", fusion=default)

    def test_backend_and_code_version_in_key(self):
        store = TraceStore()
        k_meta = store.make_key("avmnist", backend="meta")
        k_eager = store.make_key("avmnist", backend="eager")
        assert k_meta != k_eager
        assert k_meta.code_version == code_fingerprint()

    def test_unimodal_distinct_from_fusion(self):
        store = TraceStore()
        assert store.make_key("avmnist", unimodal="image") != \
               store.make_key("avmnist", fusion="slfs")


class TestCaptureAndHits:
    def test_warm_hit_skips_capture(self):
        store = TraceStore()
        first = store.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert store.stats["captures"] == 1 and store.stats["misses"] == 1
        second = store.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert second is first  # same object: tracing skipped entirely
        assert store.stats["captures"] == 1 and store.stats["hits"] == 1

    def test_stored_scalars_match_model(self):
        store = TraceStore()
        stored = store.get_or_capture("avmnist", batch_size=4, backend="meta")
        model = store.model("avmnist")
        assert stored.parameters == model.num_parameters()
        assert stored.parameter_bytes == model.parameter_bytes()
        assert stored.input_bytes == model.input_bytes(4)
        assert stored.modalities == model.modality_names
        assert stored.trace.total_flops > 0

    def test_meta_and_eager_entries_price_identically(self):
        from repro.profiling.profiler import MMBenchProfiler

        store = TraceStore()
        meta = store.get_or_capture("avmnist", batch_size=4, backend="meta")
        eager = store.get_or_capture("avmnist", batch_size=4, backend="eager")
        profiler = MMBenchProfiler("2080ti")
        t_meta = profiler.price(None, meta.trace, 4,
                                model_bytes=meta.parameter_bytes,
                                input_bytes=meta.input_bytes).total_time
        t_eager = profiler.price(None, eager.trace, 4,
                                 model_bytes=eager.parameter_bytes,
                                 input_bytes=eager.input_bytes).total_time
        assert t_meta == t_eager


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        warm = TraceStore(tmp_path)
        original = warm.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert len(list(tmp_path.glob("*.mmt"))) == 1

        cold = TraceStore(tmp_path)  # fresh process-equivalent
        loaded = cold.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert cold.stats["captures"] == 0
        assert cold.stats["disk_hits"] == 1
        assert loaded.parameters == original.parameters
        assert len(loaded.trace.kernels) == len(original.trace.kernels)
        for a, b in zip(original.trace.kernels, loaded.trace.kernels):
            assert (a.name, a.category, a.flops, a.bytes_read, a.bytes_written,
                    a.threads, a.stage, a.modality, a.seq) == \
                   (b.name, b.category, b.flops, b.bytes_read, b.bytes_written,
                    b.threads, b.stage, b.modality, b.seq)
        for a, b in zip(original.trace.host_events, loaded.trace.host_events):
            assert (a.kind, a.bytes, a.stage, a.seq, a.name) == \
                   (b.kind, b.bytes, b.stage, b.seq, b.name)

    def test_payload_rejects_unknown_schema(self):
        store = TraceStore()
        stored = store.get_or_capture("avmnist", batch_size=2, backend="meta")
        payload = trace_to_payload(stored, store.make_key("avmnist", batch_size=2))
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            trace_from_payload(payload)

    def test_v2_payload_loads_as_all_forward(self):
        """Back-compat: schema-v2 entries (pre-pass inference captures)
        decode with every kernel on the forward pass."""
        store = TraceStore()
        stored = store.get_or_capture("avmnist", batch_size=2, backend="meta")
        payload = trace_to_payload(stored, store.make_key("avmnist", batch_size=2))
        payload["schema"] = 2
        del payload["columns"]["pass_codes"]
        del payload["columns"]["host_pass_codes"]
        loaded = trace_from_payload(payload)
        cols = loaded.trace.columns()
        assert (cols.pass_codes == 0).all()
        assert (cols.host_pass_codes == 0).all()
        assert loaded.trace.passes() == ["forward"]

    def test_training_trace_round_trip_through_disk(self, tmp_path):
        warm = TraceStore(tmp_path)
        original = warm.get_or_capture_training("avmnist", batch_size=2,
                                                backend="meta")
        cold = TraceStore(tmp_path)
        loaded = cold.get_or_capture_training("avmnist", batch_size=2,
                                              backend="meta")
        assert cold.stats["captures"] == 0 and cold.stats["disk_hits"] == 1
        assert loaded.trace.passes() == original.trace.passes() == \
            ["forward", "loss", "backward", "optimizer"]
        for a, b in zip(original.trace.kernels, loaded.trace.kernels):
            assert (a.name, a.pass_, a.stage, a.flops) == \
                   (b.name, b.pass_, b.stage, b.flops)

    def test_binary_header_carries_key(self, tmp_path):
        from repro.trace.binfmt import read_header

        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        path = next(tmp_path.glob("*.mmt"))
        header = read_header(path)
        assert header["schema"] == 5
        assert header["key"]["workload"] == "avmnist"
        assert header["key"]["code_version"] == code_fingerprint()

    def test_corrupt_disk_entry_recaptured_not_fatal(self, tmp_path):
        seeded = TraceStore(tmp_path)
        seeded.get_or_capture("avmnist", batch_size=2, backend="meta")
        path = next(tmp_path.glob("*.mmt"))
        path.write_bytes(b"definitely not a trace file")

        cold = TraceStore(tmp_path)
        out = cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["captures"] == 1  # recaptured, no crash
        assert cold.stats["corrupt"] == 1  # counted, distinct from a miss
        assert "1 corrupt" in cold.stats_line()
        assert out.trace.total_flops > 0
        # The bad bytes were quarantined aside, not silently vaporized.
        assert list(tmp_path.glob("*.corrupt"))
        # The bad file was replaced with a good one: next process disk-hits.
        fresh = TraceStore(tmp_path)
        fresh.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert fresh.stats["disk_hits"] == 1 and fresh.stats["captures"] == 0

    def test_clear_keeps_disk_unless_asked(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        store.clear()
        assert len(store) == 0 and list(tmp_path.glob("*.mmt"))
        store.clear(disk=True)
        # Schema-aware: binary files AND the interning sidecar are gone.
        assert not list(tmp_path.glob("*.mmt"))
        assert not (tmp_path / TraceStore.INTERNING_SIDECAR).exists()


class TestCostModelShims:
    """PR-1 back-compat: clear_cost_cache / PROFILE_STATS over the store."""

    def test_clear_cost_cache_clears_default_store(self):
        clear_cost_cache()
        ProfiledCostModel("avmnist", anchors=(1, 4)).latency("2080ti", 2)
        assert len(default_store()) > 0
        clear_cost_cache()
        assert len(default_store()) == 0

    def test_profile_stats_mirror_store_captures(self):
        clear_cost_cache()
        before = dict(PROFILE_STATS)
        ProfiledCostModel("avmnist", anchors=(1, 4)).latency("2080ti", 2)
        delta = PROFILE_STATS["captures"] - before["captures"]
        assert delta == 2  # one per anchor
        assert default_store().stats["captures"] == 2

    def test_cost_model_latency_backend_equivalence(self):
        clear_cost_cache()
        t_meta = ProfiledCostModel("avmnist", anchors=(1, 4),
                                   backend="meta").latency("2080ti", 3)
        clear_cost_cache()
        t_eager = ProfiledCostModel("avmnist", anchors=(1, 4),
                                    backend="eager").latency("2080ti", 3)
        assert t_meta == t_eager


class TestDefaultStore:
    def test_env_var_configures_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MMBENCH_CACHE_DIR", str(tmp_path / "cache"))
        set_default_store(None)
        store = default_store()
        assert store.cache_dir == tmp_path / "cache"
        assert store.cache_dir.is_dir()

    def test_set_default_store_returns_previous(self):
        mine = TraceStore()
        prev = set_default_store(mine)
        assert default_store() is mine
        set_default_store(prev)
