"""Unit tests for the execution-graph ingest layer.

Covers the op-mapping registry (ordering, overrides, memoization), the
pass/stage/modality heuristics, the shape/dtype work estimators, and the
structured-error contract for malformed graphs. Golden-fixture and
round-trip coverage live in ``test_ingest_golden.py`` and
``tests/integration/test_ingest_roundtrip.py``.
"""

from __future__ import annotations

import pytest

from repro.trace.events import (
    KernelCategory,
    PASS_BACKWARD,
    PASS_FORWARD,
    PASS_LOSS,
    PASS_OPTIMIZER,
    STAGE_OPTIMIZER,
)
from repro.trace.ingest import (
    IngestError,
    OpMappingRegistry,
    STAGE_UNKNOWN,
    default_registry,
    detect_pass,
    estimate_flops,
    ingest_graph,
    source_digest,
)


def graph_of(*nodes, **top):
    base = {"schema": "mmbench-eg/1", "name": "t", "nodes": list(nodes)}
    base.update(top)
    return base


def kernel(node_id, name, parents=(), **fields):
    node = {"id": node_id, "name": name, "parents": list(parents)}
    node.update(fields)
    return node


# -- registry -------------------------------------------------------------------


class TestRegistry:
    def test_default_rules_resolve_core_vocabulary(self):
        reg = default_registry()
        expected = {
            "conv2d": KernelCategory.CONV,
            "aten::conv2d": KernelCategory.CONV,
            "batch_norm": KernelCategory.BNORM,
            "layer_norm": KernelCategory.BNORM,
            "relu": KernelCategory.RELU,
            "max_pool2d": KernelCategory.POOLING,
            "matmul": KernelCategory.GEMM,
            "addmm": KernelCategory.GEMM,
            "linear": KernelCategory.GEMM,
            "softmax": KernelCategory.REDUCE,
            "add": KernelCategory.ELEWISE,
            "mul": KernelCategory.ELEWISE,
        }
        for name, category in expected.items():
            rule = reg.resolve(name)
            assert rule is not None and rule.category == category, name

    def test_autograd_camelcase_names_resolve(self):
        reg = default_registry()
        assert reg.resolve("MmBackward0").category == KernelCategory.GEMM
        assert reg.resolve("SoftmaxBackward0").category == KernelCategory.REDUCE
        assert (reg.resolve("CrossEntropyLossBackward0").category
                == KernelCategory.REDUCE)

    def test_token_prefix_matching_avoids_substring_traps(self):
        reg = default_registry()
        # "accumulategrad" contains "mul"; token matching must not see it.
        assert reg.resolve("AccumulateGrad") is None
        assert reg.resolve("my_custom_op") is None

    def test_registered_rules_override_defaults(self):
        reg = default_registry()
        assert reg.resolve("my_custom_op") is None
        reg.register("my_custom", KernelCategory.GEMM)
        assert reg.resolve("my_custom_op").category == KernelCategory.GEMM
        # Overrides win over defaults because they are prepended.
        reg.register("relu", "Gemm")
        assert reg.resolve("relu").category == KernelCategory.GEMM

    def test_register_rejects_bad_category_and_pass(self):
        reg = default_registry()
        with pytest.raises(IngestError):
            reg.register("x", "NotACategory")
        with pytest.raises(IngestError):
            reg.register("x", KernelCategory.GEMM, pass_="sideways")

    def test_from_mapping_layers_over_defaults(self):
        reg = OpMappingRegistry.from_mapping({"magic": "Gemm"})
        assert reg.resolve("fused_magic_kernel").category == KernelCategory.GEMM
        assert reg.resolve("conv2d").category == KernelCategory.CONV

    def test_digest_changes_with_rules(self):
        a = default_registry()
        b = default_registry()
        assert a.digest() == b.digest()
        b.register("magic", KernelCategory.GEMM)
        assert a.digest() != b.digest()

    def test_copy_is_independent(self):
        a = default_registry()
        b = a.copy()
        b.register("magic", KernelCategory.GEMM)
        assert a.resolve("magic") is None
        assert b.resolve("magic") is not None


# -- pass detection --------------------------------------------------------------


class TestDetectPass:
    @pytest.mark.parametrize("name,expected", [
        ("conv2d", PASS_FORWARD),
        ("relu", PASS_FORWARD),
        ("ConvolutionBackward0", PASS_BACKWARD),
        ("relu_bwd", PASS_BACKWARD),
        ("AccumulateGrad", PASS_BACKWARD),
        ("autograd::engine", PASS_BACKWARD),
        ("optimizer.step#SGD.step", PASS_OPTIMIZER),
        ("adam_update", PASS_OPTIMIZER),
        ("cross_entropy_loss", PASS_LOSS),
        ("nll_loss_forward", PASS_LOSS),
        ("mse_loss", PASS_LOSS),
    ])
    def test_detection(self, name, expected):
        assert detect_pass(name) == expected

    def test_backward_outranks_loss(self):
        # A loss gradient kernel belongs to the backward pass.
        assert detect_pass("cross_entropy_loss_backward") == PASS_BACKWARD


# -- estimators ------------------------------------------------------------------


class TestEstimators:
    def test_gemm_uses_inner_dimension(self):
        flops = estimate_flops(KernelCategory.GEMM,
                               [(4, 8), (8, 4)], [(4, 4)], 2)
        assert flops == 2.0 * 16 * 8

    def test_conv_uses_weight_volume(self):
        flops = estimate_flops(KernelCategory.CONV,
                               [(1, 3, 8, 8), (4, 3, 3, 3)], [(1, 4, 8, 8)], 2)
        assert flops == 2.0 * 256 * 27

    def test_reduce_and_pooling_scale_with_input(self):
        assert estimate_flops(KernelCategory.REDUCE, [(2, 16, 16)], [(2, 16)], 1) == 512
        assert estimate_flops(KernelCategory.POOLING,
                              [(1, 4, 8, 8)], [(1, 4, 4, 4)], 1) == 256

    def test_elewise_scales_with_arity(self):
        assert estimate_flops(KernelCategory.ELEWISE, [(4, 4), (4, 4)], [(4, 4)], 2) \
            == 32

    def test_estimates_never_negative(self):
        for category in KernelCategory:
            assert estimate_flops(category, [], [], 0) >= 0.0


# -- ingest behavior -------------------------------------------------------------


class TestIngestGraph:
    def test_explicit_work_descriptors_win_over_estimation(self):
        g = ingest_graph(graph_of(kernel(
            1, "conv2d", flops=123.0, bytes_read=7.0, bytes_written=9.0,
            threads=5, input_shapes=[[64, 64]], output_shapes=[[64, 64]])))
        [k] = g.trace.kernels
        assert (k.flops, k.bytes_read, k.bytes_written, k.threads) == (123.0, 7.0, 9.0, 5)

    def test_bytes_follow_dtypes(self):
        g = ingest_graph(graph_of(kernel(
            1, "embedding", input_shapes=[[8]], input_dtypes=["int64"],
            output_shapes=[[8, 4]], output_dtypes=["float16"])))
        [k] = g.trace.kernels
        assert k.bytes_read == 8 * 8
        assert k.bytes_written == 32 * 2

    def test_unknown_ops_reported_never_dropped(self):
        g = ingest_graph(graph_of(
            kernel(1, "totally_unknown", input_shapes=[[4]], output_shapes=[[4]]),
            kernel(2, "relu", [1], input_shapes=[[4]], output_shapes=[[4]]),
        ))
        assert g.report.n_kernels == 2  # the unknown op still became a kernel
        assert g.report.unknown_ops == {"totally_unknown": 1}
        assert g.report.unknown_fraction == 0.5
        assert g.trace.kernels[0].category == KernelCategory.OTHER

    def test_explicit_pass_beats_detection(self):
        g = ingest_graph(graph_of(kernel(
            1, "MmBackward0", output_shapes=[[4]], **{"pass": "forward"})))
        assert g.trace.kernels[0].pass_ == PASS_FORWARD

    def test_optimizer_rule_sets_stage(self):
        g = ingest_graph(graph_of(kernel(
            1, "optimizer.step#SGD.step", output_shapes=[[4]])))
        [k] = g.trace.kernels
        assert k.pass_ == PASS_OPTIMIZER
        assert k.stage == STAGE_OPTIMIZER

    def test_unattributed_stage_lands_in_unknown_bucket(self):
        g = ingest_graph(graph_of(kernel(1, "matmul", output_shapes=[[4]])))
        assert g.trace.kernels[0].stage == STAGE_UNKNOWN
        assert g.report.unknown_stage_kernels == 1
        assert STAGE_UNKNOWN in g.trace.stages()

    def test_modality_heuristic_and_explicit_null(self):
        g = ingest_graph(graph_of(
            kernel(1, "image_encoder_conv", output_shapes=[[4]]),
            kernel(2, "text_embedding", [1], output_shapes=[[4]]),
            kernel(3, "audio_conv", [2], output_shapes=[[4]], modality=None),
        ))
        modalities = [k.modality for k in g.trace.kernels]
        assert modalities == ["image", "text", None]

    def test_topological_reordering(self):
        # Nodes serialized backwards; emission order must follow deps.
        g = ingest_graph(graph_of(
            kernel(3, "relu", [2], output_shapes=[[4]]),
            kernel(2, "matmul", [1], output_shapes=[[4]]),
            kernel(1, "conv2d", [], output_shapes=[[4]]),
        ))
        assert g.topo_order == (1, 2, 3)
        assert [k.name for k in g.trace.kernels] == ["conv2d", "matmul", "relu"]
        assert [k.seq for k in g.trace.kernels] == [0, 1, 2]

    def test_host_nodes_become_host_events(self):
        g = ingest_graph(graph_of(
            {"id": 1, "name": "copy_in", "parents": [], "host": True,
             "kind": "h2d", "bytes": 1024},
            kernel(2, "relu", [1], output_shapes=[[4]]),
        ))
        assert g.report.n_host_events == 1
        [h] = g.trace.host_events
        assert h.bytes == 1024 and h.kind.value == "h2d"

    def test_batch_size_and_model_metadata(self):
        g = ingest_graph(graph_of(
            kernel(1, "relu", output_shapes=[[4]]),
            batch_size=16,
            model={"parameters": 10, "parameter_bytes": 40, "input_bytes": 64,
                   "modalities": ["image"]},
        ))
        assert g.batch_size == 16
        assert (g.parameters, g.parameter_bytes, g.input_bytes) == (10, 40, 64)
        assert g.modalities == ["image"]

    def test_source_digest_is_content_addressed(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"nodes": []}')
        b.write_text('{"nodes": []}')
        assert source_digest(a) == source_digest(b)
        b.write_text('{"nodes": [], "name": "x"}')
        assert source_digest(a) != source_digest(b)


# -- structured errors ------------------------------------------------------------


class TestIngestErrors:
    def assert_raises_naming(self, graph, *fragments):
        with pytest.raises(IngestError) as excinfo:
            ingest_graph(graph)
        message = str(excinfo.value)
        for fragment in fragments:
            assert fragment in message, (fragment, message)
        return excinfo.value

    def test_missing_parent_names_node_and_parent(self):
        err = self.assert_raises_naming(
            graph_of(kernel(2, "relu", [99], output_shapes=[[4]])),
            "unknown parent", "99", "node 2")
        assert err.node_id == 2

    def test_cycle_names_a_node(self):
        err = self.assert_raises_naming(graph_of(
            kernel(1, "a", [2], output_shapes=[[4]]),
            kernel(2, "b", [1], output_shapes=[[4]]),
        ), "cycle")
        assert err.node_id in (1, 2)

    def test_self_dependency(self):
        self.assert_raises_naming(
            graph_of(kernel(1, "a", [1], output_shapes=[[4]])),
            "depends on itself", "node 1")

    def test_unknown_dtype_names_node(self):
        err = self.assert_raises_naming(
            graph_of(kernel(1, "relu", input_shapes=[[4]],
                            input_dtypes=["complex1024"], output_shapes=[[4]])),
            "unknown dtype", "complex1024", "node 1")
        assert err.node_id == 1

    def test_duplicate_node_id(self):
        self.assert_raises_naming(graph_of(
            kernel(1, "a", output_shapes=[[4]]),
            kernel(1, "b", output_shapes=[[4]]),
        ), "duplicate node id")

    def test_negative_work_descriptor(self):
        self.assert_raises_naming(
            graph_of(kernel(1, "relu", flops=-5, output_shapes=[[4]])),
            "flops", "non-negative", "node 1")

    def test_missing_name_and_missing_id(self):
        self.assert_raises_naming(graph_of({"id": 1, "parents": []}), "no 'name'")
        self.assert_raises_naming(graph_of({"name": "relu"}), "no 'id'")

    def test_bad_shapes_and_bad_pass(self):
        self.assert_raises_naming(
            graph_of(kernel(1, "relu", input_shapes=[[4, -1]])),
            "invalid dimension", "node 1")
        self.assert_raises_naming(
            graph_of(kernel(1, "relu", output_shapes=[[4]], **{"pass": "sideways"})),
            "unknown pass", "node 1")

    def test_unparseable_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(IngestError, match="invalid JSON"):
            ingest_graph(str(bad))

    def test_missing_nodes_list(self):
        with pytest.raises(IngestError, match="no 'nodes'"):
            ingest_graph({"name": "x"})

    def test_errors_are_never_raw_keyerror_or_recursion(self):
        # The regression this PR pins: malformed graphs must never escape
        # as KeyError/RecursionError from deep inside the mapper.
        deep = graph_of(*[kernel(i, "relu", [i - 1] if i > 1 else [],
                                 output_shapes=[[4]])
                          for i in range(1, 5001)])
        deep["nodes"][0]["parents"] = [5000]  # one giant cycle
        with pytest.raises(IngestError):
            ingest_graph(deep)
