"""The binary columnar (schema v5) disk tier: zero-copy loads, round
trips, back-compat, interning, corpus ops, concurrent writers."""

from __future__ import annotations

import multiprocessing
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.trace import binfmt
from repro.trace.columns import (
    HOST_COLUMN_SPEC,
    KERNEL_COLUMN_SPEC,
    TABLE_NAMES,
    TraceColumns,
)
from repro.trace.events import (
    PASSES,
    HostEvent,
    HostOpKind,
    KernelCategory,
    KernelEvent,
)
from repro.trace.store import (
    StoredTrace,
    TraceStore,
    read_legacy_json,
    set_default_store,
    trace_from_payload,
    trace_to_payload,
    write_legacy_json,
)
from repro.trace.tracer import Trace
from repro.workloads.registry import list_workloads

FIXTURES = Path(__file__).parent.parent / "fixtures" / "trace_store"

ALL_COLUMNS = [name for name, _ in KERNEL_COLUMN_SPEC + HOST_COLUMN_SPEC]


@pytest.fixture(autouse=True)
def fresh_default_store():
    prev = set_default_store(None)
    yield
    set_default_store(prev)


def random_stored_trace(rng: np.random.Generator, n: int = 40,
                        host_n: int = 7) -> StoredTrace:
    """A synthetic trace with every categorical dimension exercised."""
    stages = ("preprocess", "encoder", "fusion", "head", "optimizer")
    modalities = ("image", "audio", "text", None)
    categories = list(KernelCategory)
    kinds = list(HostOpKind)
    kernels = [
        KernelEvent(
            name=f"op_{rng.integers(0, 12)}",
            category=categories[rng.integers(0, len(categories))],
            flops=float(rng.uniform(0, 1e9)),
            bytes_read=float(rng.uniform(0, 1e7)),
            bytes_written=float(rng.uniform(0, 1e6)),
            threads=int(rng.integers(1, 1 << 20)),
            stage=stages[rng.integers(0, len(stages))],
            modality=modalities[rng.integers(0, len(modalities))],
            pass_=PASSES[rng.integers(0, len(PASSES))],
            seq=int(i),
            coalesced_fraction=float(rng.uniform(0.1, 1.0)),
            reuse_factor=float(rng.uniform(1.0, 16.0)),
            meta={"shape": [int(rng.integers(1, 64))]} if rng.random() < 0.3 else {},
        )
        for i in range(n)
    ]
    host_events = [
        HostEvent(
            kind=kinds[rng.integers(0, len(kinds))],
            bytes=float(rng.uniform(0, 1e6)),
            stage=stages[rng.integers(0, len(stages))],
            modality=modalities[rng.integers(0, len(modalities))],
            pass_=PASSES[rng.integers(0, len(PASSES))],
            seq=int(i),
            name=f"host_{rng.integers(0, 4)}",
        )
        for i in range(host_n)
    ]
    return StoredTrace(
        trace=Trace(kernels, host_events),
        model_name=f"random_{rng.integers(0, 1 << 30)}",
        parameters=int(rng.integers(1, 1 << 24)),
        parameter_bytes=int(rng.integers(1, 1 << 26)),
        input_bytes=int(rng.integers(1, 1 << 22)),
        modalities=["image", "audio"],
        extra={"seed": int(rng.integers(0, 1 << 16))},
    )


def assert_columns_equal(a: TraceColumns, b: TraceColumns) -> None:
    assert (a.n, a.host_n) == (b.n, b.host_n)
    for name in ALL_COLUMNS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for tname in TABLE_NAMES:
        assert getattr(a, tname) == getattr(b, tname), tname
    assert a.meta == b.meta and a.host_meta == b.host_meta


def engine_total(stored: StoredTrace, device: str = "2080ti") -> float:
    engine = ExecutionEngine(get_device(device))
    return engine.run(stored.trace, model_bytes=stored.parameter_bytes,
                      input_bytes=stored.input_bytes).total_time


class TestRoundTripProperties:
    """Random traces -> v5 write -> mmap load must be lossless."""

    def test_random_traces_round_trip_exactly(self, tmp_path):
        rng = np.random.default_rng(7)
        for trial in range(8):
            stored = random_stored_trace(
                rng, n=int(rng.integers(1, 200)), host_n=int(rng.integers(0, 20)))
            path = tmp_path / f"t{trial}.mmt"
            binfmt.write_entry(path, {"trial": trial}, stored)
            header, loaded = binfmt.read_entry(path)
            assert header["key"] == {"trial": trial}
            assert_columns_equal(stored.trace.columns(), loaded.trace.columns())
            assert loaded.model_name == stored.model_name
            assert loaded.parameters == stored.parameters
            assert loaded.parameter_bytes == stored.parameter_bytes
            assert loaded.input_bytes == stored.input_bytes
            assert loaded.modalities == stored.modalities
            assert loaded.extra == stored.extra

    def test_random_traces_price_identically(self, tmp_path):
        rng = np.random.default_rng(11)
        for trial in range(4):
            stored = random_stored_trace(rng, n=64)
            path = tmp_path / f"p{trial}.mmt"
            binfmt.write_entry(path, None, stored)
            _, loaded = binfmt.read_entry(path)
            t0, t1 = engine_total(stored), engine_total(loaded)
            assert t1 == pytest.approx(t0, rel=1e-9)

    def test_empty_trace_round_trips(self, tmp_path):
        stored = StoredTrace(trace=Trace([], []), model_name="empty",
                             parameters=0, parameter_bytes=0, input_bytes=0)
        path = tmp_path / "empty.mmt"
        binfmt.write_entry(path, None, stored)
        _, loaded = binfmt.read_entry(path)
        assert loaded.trace.columns().n == 0
        assert loaded.trace.columns().host_n == 0


class TestZeroCopy:
    def test_loaded_columns_are_readonly_mmap_views(self, tmp_path):
        warm = TraceStore(tmp_path)
        warm.get_or_capture("avmnist", batch_size=4, backend="meta")
        cold = TraceStore(tmp_path)
        cols = cold.get_or_capture("avmnist", batch_size=4,
                                   backend="meta").trace.columns()
        assert cold.stats["disk_hits"] == 1
        for name in ALL_COLUMNS:
            arr = getattr(cols, name)
            assert not arr.flags["OWNDATA"], name   # a view, not a copy
            assert arr.base is not None, name       # ... over the file mmap
            assert not arr.flags["WRITEABLE"], name  # and strictly read-only

    def test_inflight_mmap_survives_concurrent_replace(self, tmp_path):
        """os.replace over a mapped file must not tear the open view."""
        store = TraceStore(tmp_path)
        original = store.get_or_capture("avmnist", batch_size=4, backend="meta")
        key = store.make_key("avmnist", batch_size=4, backend="meta")

        cold = TraceStore(tmp_path)
        loaded = cold.get_or_capture("avmnist", batch_size=4, backend="meta")
        snapshot = loaded.trace.columns().flops.copy()

        # Re-publish the same digest (a concurrent writer finishing late).
        store.put(key, original)
        # The already-mapped view still reads the old inode, intact.
        assert np.array_equal(loaded.trace.columns().flops, snapshot)
        # And a fresh mapping of the new file agrees too.
        fresh = TraceStore(tmp_path)
        again = fresh.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert np.array_equal(again.trace.columns().flops, snapshot)


class TestJsonBinaryEquivalence:
    """The v5 path must be numerically invisible vs the JSON path."""

    @pytest.mark.parametrize("workload", list_workloads())
    def test_workload_columns_and_metrics_match_json_path(self, tmp_path, workload):
        store = TraceStore(tmp_path)
        stored = store.get_or_capture(workload, batch_size=4, backend="meta")
        key = store.make_key(workload, batch_size=4, backend="meta")

        json_path = tmp_path / "baseline.json.gz"
        write_legacy_json(json_path, trace_to_payload(stored, key))
        via_json = trace_from_payload(read_legacy_json(json_path))
        _, via_binary = binfmt.read_entry(tmp_path / f"{key.digest()}.mmt",
                                          interner=store._interner)

        assert_columns_equal(via_json.trace.columns(),
                             via_binary.trace.columns())
        assert engine_total(via_binary) == pytest.approx(
            engine_total(via_json), rel=1e-9)

    def test_training_step_matches_json_path(self, tmp_path):
        store = TraceStore(tmp_path)
        stored = store.get_or_capture_training("avmnist", batch_size=2,
                                               backend="meta")
        key = store.make_key("avmnist", batch_size=2, backend="meta",
                             mode="train:adam")
        json_path = tmp_path / "train.json.gz"
        write_legacy_json(json_path, trace_to_payload(stored, key))
        via_json = trace_from_payload(read_legacy_json(json_path))
        _, via_binary = binfmt.read_entry(tmp_path / f"{key.digest()}.mmt",
                                          interner=store._interner)
        assert_columns_equal(via_json.trace.columns(),
                             via_binary.trace.columns())
        assert via_binary.trace.passes() == \
            ["forward", "loss", "backward", "optimizer"]
        assert engine_total(via_binary) == pytest.approx(
            engine_total(via_json), rel=1e-9)


class TestBackCompatFixtures:
    """Committed v2/v3/v4 gzip-JSON files must load forever, and re-save
    as v5."""

    @pytest.mark.parametrize("schema", [2, 3, 4])
    def test_fixture_loads(self, schema):
        payload = read_legacy_json(FIXTURES / f"store_v{schema}.json.gz")
        assert payload["schema"] == schema
        stored = trace_from_payload(payload)
        cols = stored.trace.columns()
        assert cols.n == 3 and cols.host_n == 2
        assert cols.stage_table == ("encoder", "head")
        assert stored.model_name == "fixture_model"
        if schema == 2:
            # Pre-pass payloads decode as all-forward.
            assert (cols.pass_codes == 0).all()
            assert (cols.host_pass_codes == 0).all()
        else:
            assert list(cols.pass_codes) == [0, 0, 2]
        if schema >= 4:
            assert stored.extra == {"origin": f"fixture-v{schema}"}
        else:
            assert stored.extra == {}

    @pytest.mark.parametrize("schema", [2, 3, 4])
    def test_fixture_migrates_to_v5(self, tmp_path, schema):
        src = FIXTURES / f"store_v{schema}.json.gz"
        digest = "f" * 64
        shutil.copy(src, tmp_path / f"{digest}.json.gz")
        store = TraceStore(tmp_path)
        before = trace_from_payload(read_legacy_json(src))

        assert store.migrate() == 1
        assert not list(tmp_path.glob("*.json.gz"))
        binary = tmp_path / f"{digest}.mmt"
        assert binary.exists()
        header, after = binfmt.read_entry(binary, interner=store._interner)
        assert header["key"]["code_version"] == "fix7ure000000"
        assert_columns_equal(before.trace.columns(), after.trace.columns())

    def test_legacy_entry_loads_through_get_then_upgrades_on_put(self, tmp_path):
        """A v4 file warm-hits without migration; a re-put supersedes it."""
        seeder = TraceStore(tmp_path)
        entry = seeder.get_or_capture("avmnist", batch_size=2, backend="meta")
        key = seeder.make_key("avmnist", batch_size=2, backend="meta")
        # Rewind the disk tier to the legacy format.
        (tmp_path / f"{key.digest()}.mmt").unlink()
        write_legacy_json(tmp_path / f"{key.digest()}.json.gz",
                          trace_to_payload(entry, key))

        cold = TraceStore(tmp_path)
        loaded = cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["disk_hits"] == 1 and cold.stats["captures"] == 0
        assert_columns_equal(entry.trace.columns(), loaded.trace.columns())

        cold.put(key, loaded)
        assert (tmp_path / f"{key.digest()}.mmt").exists()
        assert not (tmp_path / f"{key.digest()}.json.gz").exists()


class TestInterning:
    def test_sidecar_shared_across_traces(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        sidecar = tmp_path / TraceStore.INTERNING_SIDECAR
        size_after_one = sidecar.stat().st_size
        # Same workload at another batch: same op/stage/modality names, so
        # the sidecar should not grow at all.
        store.get_or_capture("avmnist", batch_size=4, backend="meta")
        assert sidecar.stat().st_size == size_after_one

    def test_sidecar_ids_are_content_addressed(self):
        assert binfmt.string_id("conv2d") == binfmt.string_id("conv2d")
        assert binfmt.string_id("conv2d") != binfmt.string_id("relu")
        assert 0 <= binfmt.string_id("conv2d") < 1 << 63

    def test_torn_sidecar_tail_is_skipped_and_rewritten(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        sidecar = tmp_path / TraceStore.INTERNING_SIDECAR
        with open(sidecar, "ab") as fh:
            fh.write(b'{"id": 123, "s": "trun')  # crash mid-append
        cold = TraceStore(tmp_path)
        loaded = cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["disk_hits"] == 1
        assert loaded.trace.total_flops > 0

    def test_missing_sidecar_quarantines_instead_of_crashing(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        (tmp_path / TraceStore.INTERNING_SIDECAR).unlink()
        cold = TraceStore(tmp_path)
        out = cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["corrupt"] == 1 and cold.stats["captures"] == 1
        assert out.trace.total_flops > 0


class TestCorpusOps:
    def test_prefetch_maps_whole_corpus_in_one_pass(self, tmp_path):
        seeder = TraceStore(tmp_path)
        for workload in ("avmnist", "mmimdb"):
            seeder.get_or_capture(workload, batch_size=2, backend="meta")

        cold = TraceStore(tmp_path)
        assert cold.prefetch() == 2
        assert len(cold) == 2
        # Everything is already resident: the get is a pure memory hit.
        cold.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert cold.stats["captures"] == 0 and cold.stats["misses"] == 0

    def test_prefetch_with_explicit_keys(self, tmp_path):
        seeder = TraceStore(tmp_path)
        seeder.get_or_capture("avmnist", batch_size=2, backend="meta")
        cold = TraceStore(tmp_path)
        keys = [cold.make_key("avmnist", batch_size=2, backend="meta"),
                cold.make_key("avmnist", batch_size=64, backend="meta")]
        assert cold.prefetch(keys) == 1  # the batch-64 trace was never stored
        assert cold.stats["misses"] == 1

    def test_entries_lists_both_formats(self, tmp_path):
        store = TraceStore(tmp_path)
        entry = store.get_or_capture("avmnist", batch_size=2, backend="meta")
        key = store.make_key("avmnist", batch_size=4, backend="meta")
        write_legacy_json(tmp_path / f"{key.digest()}.json.gz",
                          trace_to_payload(entry, key))
        infos = store.entries()
        assert sorted(i["format"] for i in infos) == ["json", "v5"]
        assert all(i["status"] == "ok" and not i["stale"] for i in infos)
        assert all(i["n"] > 0 for i in infos)

    def test_gc_removes_stale_corrupt_and_torn(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        # A stale legacy entry (fixture fingerprint is not the live one).
        shutil.copy(FIXTURES / "store_v4.json.gz",
                    tmp_path / ("a" * 64 + ".json.gz"))
        (tmp_path / "leftover.tmp").write_bytes(b"torn write")
        (tmp_path / ("b" * 64 + ".mmt")).write_bytes(b"garbage")

        removed = store.gc()
        assert removed == {"corrupt": 0, "tmp": 1, "stale": 1, "unreadable": 1}
        # The live entry survives and still warm-hits.
        fresh = TraceStore(tmp_path)
        fresh.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert fresh.stats["disk_hits"] == 1 and fresh.stats["captures"] == 0

    def test_gc_keep_stale(self, tmp_path):
        store = TraceStore(tmp_path)
        shutil.copy(FIXTURES / "store_v4.json.gz",
                    tmp_path / ("a" * 64 + ".json.gz"))
        removed = store.gc(stale=False)
        assert removed["stale"] == 0
        assert list(tmp_path.glob("*.json.gz"))

    def test_gc_drops_sidecar_when_no_binary_entries_remain(self, tmp_path):
        store = TraceStore(tmp_path)
        store.get_or_capture("avmnist", batch_size=2, backend="meta")
        next(tmp_path.glob("*.mmt")).write_bytes(b"garbage")
        store.gc()
        assert not (tmp_path / TraceStore.INTERNING_SIDECAR).exists()
        # And the store still works from scratch afterwards.
        store.clear()
        out = store.get_or_capture("avmnist", batch_size=2, backend="meta")
        assert out.trace.total_flops > 0


def _hammer_puts(cache_dir: str, n_iters: int) -> None:
    store = TraceStore(cache_dir)
    entry = store.get_or_capture("avmnist", batch_size=3, backend="meta")
    key = store.make_key("avmnist", batch_size=3, backend="meta")
    for _ in range(n_iters):
        store.put(key, entry)


class TestConcurrentWriters:
    def test_racing_puts_never_produce_torn_reads(self, tmp_path):
        """Two processes publish the same digest while a reader maps it."""
        reference = TraceStore(tmp_path).get_or_capture(
            "avmnist", batch_size=3, backend="meta")
        expected = reference.trace.columns().flops.copy()

        ctx = multiprocessing.get_context("spawn")
        writers = [ctx.Process(target=_hammer_puts, args=(str(tmp_path), 25))
                   for _ in range(2)]
        for w in writers:
            w.start()
        corrupt_seen = 0
        try:
            for _ in range(30):
                fresh = TraceStore(tmp_path)
                loaded = fresh.get_or_capture("avmnist", batch_size=3,
                                              backend="meta")
                assert np.array_equal(loaded.trace.columns().flops, expected)
                corrupt_seen += fresh.stats["corrupt"]
        finally:
            for w in writers:
                w.join(timeout=60)
        assert all(w.exitcode == 0 for w in writers)
        assert corrupt_seen == 0
        # Final state is a clean, loadable corpus.
        final = TraceStore(tmp_path)
        out = final.get_or_capture("avmnist", batch_size=3, backend="meta")
        assert final.stats["disk_hits"] == 1 and final.stats["corrupt"] == 0
        assert np.array_equal(out.trace.columns().flops, expected)
