"""Edge cases across the workload layer."""

import numpy as np
import pytest

from repro import nn
from repro.data.synthetic import random_batch
from repro.trace.events import KernelCategory
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_workload


class TestUnimodalErrors:
    def test_mmimdb_unknown_modality(self):
        with pytest.raises(KeyError, match="no modality"):
            get_workload("mmimdb").build_unimodal("lidar")

    @pytest.mark.parametrize("name", ["cmu_mosei", "mustard", "mujoco_push",
                                      "vision_touch", "medical_seg", "transfuser"])
    def test_unknown_modalities_rejected_everywhere(self, name):
        with pytest.raises(KeyError):
            get_workload(name).build_unimodal("telepathy")


class TestVisionTouchForceEncoder:
    def test_force_uses_temporal_conv(self):
        info = get_workload("vision_touch")
        model = info.build(seed=0)
        from repro.workloads.encoders import TemporalConvEncoder

        assert isinstance(model.encoders["force"], TemporalConvEncoder)

    def test_force_branch_emits_conv_kernels(self):
        info = get_workload("vision_touch")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 4, seed=0)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(batch)
        trace = tracer.finish()
        force_kernels = trace.kernels_for_modality("force")
        assert any(k.category == KernelCategory.CONV for k in force_kernels)


class TestBatchSizeOne:
    @pytest.mark.parametrize("name", ["avmnist", "medical_seg", "transfuser"])
    def test_forward_with_single_sample(self, name):
        info = get_workload(name)
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 1, seed=0)
        with nn.no_grad():
            out = model(batch)
        assert out.shape[0] == 1


class TestTrainEvalConsistency:
    def test_eval_is_deterministic(self):
        info = get_workload("mmimdb")  # contains BatchNorm + dropout-free paths
        model = info.build(seed=0)
        model.eval()
        batch = random_batch(info.shapes, 2, seed=0)
        with nn.no_grad():
            a = model(batch).data.copy()
            b = model(batch).data
        np.testing.assert_array_equal(a, b)

    def test_train_mode_batchnorm_changes_output(self):
        info = get_workload("medical_seg")
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 4, seed=0)
        model.train()
        with nn.no_grad():
            first = model(batch).data.copy()
        model.eval()
        with nn.no_grad():
            second = model(batch).data
        assert not np.allclose(first, second)


class TestGradientFlowThroughFullModels:
    @pytest.mark.parametrize("name", ["avmnist", "transfuser", "medical_vqa"])
    def test_every_parameter_receives_grad(self, name):
        info = get_workload(name)
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        out = model(batch)
        out.sum().backward()
        missing = [pname for pname, p in model.named_parameters() if p.grad is None]
        assert not missing, f"{name}: no grad for {missing[:5]}"
