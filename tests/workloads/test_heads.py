"""Task heads."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.workloads.heads import (
    ClassificationHead,
    GenerationHead,
    RegressionHead,
    SegmentationHead,
    WaypointGRUHead,
)


@pytest.fixture
def feat(rng):
    return Tensor(rng.standard_normal((3, 32)).astype(np.float32), requires_grad=True)


class TestVectorHeads:
    def test_classification(self, rng, feat):
        head = ClassificationHead(32, 10, rng)
        assert head(feat).shape == (3, 10)

    def test_regression(self, rng, feat):
        head = RegressionHead(32, 2, rng)
        assert head(feat).shape == (3, 2)

    def test_generation_logits(self, rng, feat):
        head = GenerationHead(32, 50, 4, rng)
        out = head(feat)
        assert out.shape == (3, 4, 50)

    def test_generation_gradients(self, rng, feat):
        head = GenerationHead(32, 20, 3, rng)
        head(feat).sum().backward()
        assert feat.grad is not None
        assert head.cell.w_ih.grad is not None

    def test_waypoints_shape_and_accumulation(self, rng, feat):
        head = WaypointGRUHead(32, 4, rng)
        out = head(feat)
        assert out.shape == (3, 8)


class TestSegmentationHead:
    def test_decodes_to_input_resolution(self, rng):
        from repro.workloads.encoders import UNetEncoder

        enc = UNetEncoder(1, rng, width=8)
        x = Tensor(rng.standard_normal((2, 1, 32, 32)).astype(np.float32))
        bottleneck = enc(x)
        head = SegmentationHead(32, rng, width=8)
        mask_logits = head(bottleneck, enc.skips)
        assert mask_logits.shape == (2, 1, 32, 32)

    def test_gradients_flow_through_skips(self, rng):
        from repro.workloads.encoders import UNetEncoder

        enc = UNetEncoder(1, rng, width=8)
        x = Tensor(rng.standard_normal((1, 1, 32, 32)).astype(np.float32), requires_grad=True)
        head = SegmentationHead(32, rng, width=8)
        head(enc(x), enc.skips).sum().backward()
        assert x.grad is not None
