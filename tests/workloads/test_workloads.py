"""All nine applications: registry contract, build, forward, tracing."""

import numpy as np
import pytest

from repro import nn
from repro.data.synthetic import random_batch
from repro.trace.events import STAGE_FUSION
from repro.trace.tracer import Tracer
from repro.workloads.registry import WORKLOADS, domains, get_workload, list_workloads

ALL = list_workloads()


class TestRegistry:
    def test_nine_workloads(self):
        assert len(ALL) == 9

    def test_five_domains(self):
        groups = domains()
        assert set(groups) == {
            "Multimedia", "Affective Computing", "Intelligent Medicine",
            "Smart Robotics", "Automatic Driving",
        }
        assert sum(len(v) for v in groups.values()) == 9

    def test_lookup_and_error(self):
        assert get_workload("avmnist").name == "avmnist"
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("imagenet")

    @pytest.mark.parametrize("name", ALL)
    def test_default_fusion_in_options(self, name):
        info = WORKLOADS[name]
        fusion = info.default_fusion
        assert fusion in info.fusions

    @pytest.mark.parametrize("name", ALL)
    def test_channels_cover_modalities(self, name):
        info = WORKLOADS[name]
        channels = info.default_channels()
        assert set(channels) == set(info.modalities)


@pytest.mark.parametrize("name", ALL)
class TestBuildAndRun:
    def test_multimodal_forward_and_stages(self, name):
        info = get_workload(name)
        model = info.build(seed=0)
        batch = random_batch(info.shapes, 2, seed=0)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            out = model(batch)
        trace = tracer.finish()
        assert out.shape[0] == 2
        assert STAGE_FUSION in trace.stages()
        assert set(trace.modalities()) == set(info.modalities)
        assert model.num_parameters() > 0

    def test_unimodal_variants_build(self, name):
        info = get_workload(name)
        modality = info.modalities[0]
        uni = info.build_unimodal(modality, seed=0)
        batch = random_batch(uni.shapes, 2, seed=0)
        out = uni(batch)
        assert out.shape[0] == 2

    def test_deterministic_by_seed(self, name):
        info = get_workload(name)
        a = info.build(seed=3)
        b = info.build(seed=3)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)


class TestFusionVariants:
    @pytest.mark.parametrize("name", ALL)
    def test_every_listed_fusion_builds(self, name):
        info = get_workload(name)
        batch = random_batch(info.shapes, 2, seed=0)
        for fusion in info.fusions:
            model = info.build(fusion, seed=0)
            with nn.no_grad():
                out = model(batch)
            assert np.isfinite(out.data).all(), f"{name}[{fusion}]"

    def test_slfs_is_wider(self):
        info = get_workload("avmnist")
        base = info.build("concat", seed=0)
        slfs = info.build("slfs", seed=0)
        assert slfs.num_parameters() > 3 * base.num_parameters()

    def test_unknown_fusion_raises(self):
        with pytest.raises(KeyError):
            get_workload("medical_seg").build("sum")
        with pytest.raises(KeyError):
            get_workload("transfuser").build("concat")


class TestTaskOutputs:
    def test_segmentation_output_is_mask_logits(self):
        info = get_workload("medical_seg")
        model = info.build(seed=0)
        out = model(random_batch(info.shapes, 2, seed=0))
        assert out.shape == (2, *info.shapes.task.output_shape)

    def test_generation_output_is_token_logits(self):
        info = get_workload("medical_vqa")
        model = info.build(seed=0)
        out = model(random_batch(info.shapes, 2, seed=0))
        assert out.shape == (2, 4, info.shapes.task.num_classes)

    def test_transfuser_outputs_waypoints(self):
        info = get_workload("transfuser")
        model = info.build(seed=0)
        out = model(random_batch(info.shapes, 2, seed=0))
        assert out.shape == (2, 8)
