"""The staged multi-modal model skeleton."""

import numpy as np
import pytest

from repro import nn
from repro.data.shapes import AVMNIST
from repro.trace.events import HostOpKind, STAGE_ENCODER, STAGE_FUSION, STAGE_HEAD
from repro.trace.tracer import Tracer
from repro.workloads import avmnist
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import LeNetEncoder
from repro.workloads.heads import ClassificationHead


@pytest.fixture
def model():
    return avmnist.build("concat", seed=0)


@pytest.fixture
def batch(rng):
    return {
        "image": rng.standard_normal((2, 1, 28, 28)).astype(np.float32),
        "audio": rng.standard_normal((2, 1, 20, 20)).astype(np.float32),
    }


class TestStagedForward:
    def test_output_shape(self, model, batch):
        assert model(batch).shape == (2, 10)

    def test_stages_traced_in_order(self, model, batch):
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(batch)
        trace = tracer.finish()
        assert trace.stages() == [STAGE_ENCODER, STAGE_FUSION, STAGE_HEAD]

    def test_modalities_traced(self, model, batch):
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(batch)
        assert tracer.finish().modalities() == ["image", "audio"]

    def test_host_events_cover_sync_pattern(self, model, batch):
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            model(batch)
        events = tracer.finish().host_events
        kinds = [e.kind for e in events]
        assert kinds.count(HostOpKind.H2D) == 3  # 2 inputs + fusion round trip
        assert kinds.count(HostOpKind.SYNC) == 2  # one barrier per modality
        assert kinds.count(HostOpKind.D2H) == 1
        assert kinds.count(HostOpKind.DATA_PREP) == 1
        assert kinds.count(HostOpKind.PREPROCESS) == 2

    def test_missing_modality_raises(self, model, batch):
        del batch["audio"]
        with pytest.raises(KeyError, match="missing modality"):
            model(batch)

    def test_works_without_tracer(self, model, batch):
        assert model(batch).shape == (2, 10)


class TestUniModal:
    def test_no_fusion_stage(self, rng):
        uni = avmnist.build_unimodal("image", seed=0)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            uni({"image": rng.standard_normal((2, 1, 28, 28)).astype(np.float32)})
        trace = tracer.finish()
        assert STAGE_FUSION not in trace.stages()
        assert not uni.is_multimodal

    def test_unimodal_shapes_helper(self):
        sub = unimodal_shapes(AVMNIST, "audio")
        assert sub.modality_names == ("audio",)
        assert sub.task == AVMNIST.task


class TestConstructionValidation:
    def test_encoder_mismatch_raises(self, rng):
        encoders = {"image": LeNetEncoder(1, 8, rng)}
        head = ClassificationHead(8, 10, rng)
        with pytest.raises(ValueError, match="missing=\\['audio'\\]"):
            MultiModalModel("bad", AVMNIST, encoders, None, head)

    def test_extra_encoder_raises(self, rng):
        encoders = {
            "image": LeNetEncoder(1, 8, rng),
            "audio": LeNetEncoder(1, 8, rng, input_hw=(20, 20)),
            "lidar": LeNetEncoder(1, 8, rng),
        }
        head = ClassificationHead(8, 10, rng)
        with pytest.raises(ValueError, match="extra=\\['lidar'\\]"):
            MultiModalModel("bad", AVMNIST, encoders, None, head)

    def test_input_bytes(self, model):
        assert model.input_bytes(10) == 10 * AVMNIST.sample_bytes

    def test_encoders_registered_as_submodules(self, model):
        # Parameters of both encoders must appear in the optimizer view.
        names = {n.split(".")[0] for n, _ in model.named_parameters()}
        assert "encoder_image" in names and "encoder_audio" in names
