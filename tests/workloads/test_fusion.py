"""Table-1 fusion operators: semantics, shapes, gradients, registry."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.workloads.fusion import (
    AttentionFusion,
    ConcatFusion,
    FUSION_REGISTRY,
    LateFusionLSTM,
    LinearGLUFusion,
    SumFusion,
    TensorFusion,
    TransformerFusion,
    ZeroFusion,
    make_fusion,
)


@pytest.fixture
def features(rng):
    return [
        Tensor(rng.standard_normal((4, 16)).astype(np.float32), requires_grad=True),
        Tensor(rng.standard_normal((4, 24)).astype(np.float32), requires_grad=True),
    ]


ALL_FUSIONS = sorted(FUSION_REGISTRY)


class TestRegistry:
    def test_table1_operators_present(self):
        # Zero, Sum, Concat, Tensor, Attention, LinearGLU + transformer & LSTM.
        assert {"zero", "sum", "concat", "tensor", "attention",
                "linear_glu", "transformer", "late_lstm"} == set(FUSION_REGISTRY)

    def test_make_fusion_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown fusion"):
            make_fusion("cross_modal_magic", [8], 8)

    @pytest.mark.parametrize("name", ALL_FUSIONS)
    def test_factory_builds_each(self, name, rng):
        fusion = make_fusion(name, [16, 24], 32, rng=rng)
        assert fusion.fusion_name == name


class TestSemantics:
    def test_zero_discards(self, features):
        out = ZeroFusion([16, 24], 8)(features)
        assert out.shape == (4, 8)
        assert (out.data == 0).all()

    def test_sum_is_sum_of_projections(self, rng, features):
        fusion = SumFusion([16, 24], 8, rng=rng)
        out = fusion(features)
        manual = (fusion.projections[0](features[0]).data
                  + fusion.projections[1](features[1]).data)
        np.testing.assert_allclose(out.data, manual, rtol=1e-5)

    def test_concat_is_relu_of_affine(self, rng, features):
        fusion = ConcatFusion([16, 24], 8, rng=rng)
        out = fusion(features)
        cat = np.concatenate([f.data for f in features], axis=1)
        manual = np.maximum(cat @ fusion.fc.weight.data.T + fusion.fc.bias.data, 0)
        np.testing.assert_allclose(out.data, manual, rtol=1e-4)
        assert (out.data >= 0).all()

    def test_tensor_uses_outer_product_rank(self, rng, features):
        fusion = TensorFusion([16, 24], 8, rank=6, rng=rng)
        assert fusion(features).shape == (4, 8)
        assert fusion.fc.in_features == 36

    def test_glu_gates(self, rng, features):
        fusion = LinearGLUFusion([16, 24], 8, rng=rng)
        out = fusion(features)
        value = fusion.value_proj(features[0]).data
        # Gated output is strictly smaller in magnitude than the raw value.
        assert (np.abs(out.data) <= np.abs(value) + 1e-6).all()

    def test_attention_and_transformer_shapes(self, rng, features):
        for cls in (AttentionFusion, TransformerFusion):
            out = cls([16, 24], 16, rng=rng)(features)
            assert out.shape == (4, 16)

    def test_late_lstm_shape(self, rng, features):
        out = LateFusionLSTM([16, 24], 12, rng=rng)(features)
        assert out.shape == (4, 12)


class TestContracts:
    @pytest.mark.parametrize("name", ALL_FUSIONS)
    def test_output_shape(self, name, rng, features):
        fusion = make_fusion(name, [16, 24], 10, rng=rng)
        assert fusion(features).shape == (4, 10)

    @pytest.mark.parametrize("name", [n for n in ALL_FUSIONS if n != "zero"])
    def test_gradients_flow_to_inputs(self, name, rng, features):
        fusion = make_fusion(name, [16, 24], 10, rng=rng)
        fusion(features).sum().backward()
        for f in features:
            assert f.grad is not None
            assert np.isfinite(f.grad).all()

    @pytest.mark.parametrize("name", ALL_FUSIONS)
    def test_wrong_modality_count_raises(self, name, rng, features):
        fusion = make_fusion(name, [16, 24, 8], 10, rng=rng)
        with pytest.raises(ValueError, match="expects 3 modalities"):
            fusion(features)

    @pytest.mark.parametrize("name", [n for n in ALL_FUSIONS if n != "zero"])
    def test_three_modalities(self, name, rng):
        feats = [Tensor(rng.standard_normal((2, d)).astype(np.float32))
                 for d in (8, 12, 16)]
        fusion = make_fusion(name, [8, 12, 16], 8, rng=rng)
        assert fusion(feats).shape == (2, 8)
