"""Encoder zoo: output contracts and operator signatures."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.trace.events import KernelCategory
from repro.trace.tracer import Tracer
from repro.workloads.encoders import (
    AlbertSEncoder,
    CNNEncoder,
    DenseNetSEncoder,
    LeNetEncoder,
    MLPEncoder,
    ResNetSEncoder,
    SequenceGRUEncoder,
    SequenceMLPEncoder,
    TextTransformerEncoder,
    UNetEncoder,
    VGGSEncoder,
)


def categories_of(model, x):
    tracer = Tracer()
    with tracer.activate(), nn.no_grad():
        model(x)
    trace = tracer.finish()
    return {k.category for k in trace.kernels}


class TestImageEncoders:
    def test_lenet(self, rng):
        enc = LeNetEncoder(1, 32, rng, input_hw=(28, 28))
        out = enc(Tensor(rng.standard_normal((2, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (2, 32)

    def test_lenet_nonsquare_hw(self, rng):
        enc = LeNetEncoder(1, 16, rng, input_hw=(20, 20))
        out = enc(Tensor(rng.standard_normal((2, 1, 20, 20)).astype(np.float32)))
        assert out.shape == (2, 16)

    def test_vgg(self, rng):
        enc = VGGSEncoder(3, 32, rng)
        out = enc(Tensor(rng.standard_normal((2, 3, 64, 64)).astype(np.float32)))
        assert out.shape == (2, 32)

    def test_vgg_emits_conv_and_gemm(self, rng):
        enc = VGGSEncoder(3, 16, rng)
        cats = categories_of(enc, Tensor(rng.standard_normal((1, 3, 64, 64)).astype(np.float32)))
        assert KernelCategory.CONV in cats
        assert KernelCategory.GEMM in cats
        assert KernelCategory.BNORM in cats

    def test_cnn(self, rng):
        enc = CNNEncoder(1, 24, rng, input_hw=(32, 32))
        out = enc(Tensor(rng.standard_normal((3, 1, 32, 32)).astype(np.float32)))
        assert out.shape == (3, 24)

    def test_densenet_concat_heavy(self, rng):
        enc = DenseNetSEncoder(3, 32, rng)
        x = Tensor(rng.standard_normal((2, 3, 64, 64)).astype(np.float32))
        assert enc(x).shape == (2, 32)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            enc(x)
        names = [k.name for k in tracer.finish().kernels]
        assert names.count("concat") >= 4  # dense connectivity

    def test_resnet_vector_and_map(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 64, 64)).astype(np.float32))
        vec = ResNetSEncoder(3, 32, rng)(x)
        assert vec.shape == (2, 32)
        enc_map = ResNetSEncoder(3, 32, rng, return_map=True)
        fmap = enc_map(x)
        assert fmap.shape == (2, enc_map.out_channels, 8, 8)

    def test_unet_bottleneck_and_skips(self, rng):
        enc = UNetEncoder(1, rng, width=8)
        x = Tensor(rng.standard_normal((2, 1, 32, 32)).astype(np.float32))
        bottleneck = enc(x)
        assert bottleneck.shape == (2, 32, 8, 8)
        assert enc.skips[0].shape == (2, 8, 32, 32)
        assert enc.skips[1].shape == (2, 16, 16, 16)


class TestTextEncoders:
    def test_text_transformer(self, rng):
        enc = TextTransformerEncoder(100, 32, rng, max_len=16)
        out = enc(np.zeros((2, 10), dtype=np.int64))
        assert out.shape == (2, 32)

    def test_albert_shares_parameters(self, rng):
        enc = AlbertSEncoder(100, 32, rng, max_len=16)
        # One shared layer applied twice -> fewer params than a 2-layer BERT.
        bert = TextTransformerEncoder(100, 32, rng, num_layers=2, max_len=16)
        assert enc.num_parameters() < bert.num_parameters()
        out = enc(np.zeros((2, 10), dtype=np.int64))
        assert out.shape == (2, 32)

    def test_text_encoder_elewise_heavy(self, rng):
        """The paper: ALBERT is activation-dominated, unlike VGG."""
        enc = AlbertSEncoder(100, 32, rng, max_len=16)
        tracer = Tracer()
        with tracer.activate(), nn.no_grad():
            enc(np.zeros((2, 12), dtype=np.int64))
        trace = tracer.finish()
        cats = {k.category for k in trace.kernels}
        assert KernelCategory.CONV not in cats
        assert KernelCategory.ELEWISE in cats


class TestSequenceEncoders:
    def test_sequence_mlp(self, rng):
        enc = SequenceMLPEncoder(74, 32, rng)
        out = enc(Tensor(rng.standard_normal((2, 12, 74)).astype(np.float32)))
        assert out.shape == (2, 32)

    def test_sequence_gru(self, rng):
        enc = SequenceGRUEncoder(35, 32, rng)
        out = enc(Tensor(rng.standard_normal((2, 12, 35)).astype(np.float32)))
        assert out.shape == (2, 32)

    def test_mlp_encoder_flattens(self, rng):
        enc = MLPEncoder(16 * 8, 32, rng)
        out = enc(Tensor(rng.standard_normal((2, 16, 8)).astype(np.float32)))
        assert out.shape == (2, 32)


class TestTrainability:
    @pytest.mark.parametrize("factory", [
        lambda rng: (LeNetEncoder(1, 8, rng), Tensor(np.random.default_rng(1).standard_normal((2, 1, 28, 28)).astype(np.float32))),
        lambda rng: (SequenceGRUEncoder(6, 8, rng), Tensor(np.random.default_rng(1).standard_normal((2, 5, 6)).astype(np.float32))),
    ])
    def test_gradients_reach_all_parameters(self, factory, rng):
        enc, x = factory(rng)
        enc(x).sum().backward()
        for name, p in enc.named_parameters():
            assert p.grad is not None, name
