"""Regenerate the committed v2/v3/v4 gzip-JSON trace-store fixtures.

These files pin the legacy disk formats the binary (v5) store must keep
loading forever: a schema-v2 payload (pre-pass inference capture), a v3
payload (pass columns) and a v4 payload (``extra`` provenance dict). The
payloads are hand-rolled — deliberately independent of the live capture
path — so a behavior change in the tracer can never silently rewrite
what "a v2 file" means.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/trace_store/make_fixtures.py
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

HERE = Path(__file__).parent

#: One tiny but fully-populated trace: 3 kernels across two stages and two
#: modalities (one kernel unattributed), 2 host events, sparse meta.
_COLUMNS = {
    "n": 3,
    "flops": [1024.0, 2048.0, 512.0],
    "bytes_read": [4096.0, 8192.0, 1024.0],
    "bytes_written": [2048.0, 1024.0, 512.0],
    "threads": [256, 1024, 64],
    "coalesced_fraction": [1.0, 0.5, 1.0],
    "reuse_factor": [1.0, 4.0, 1.0],
    "category_codes": [0, 5, 7],          # Conv, Gemm, Other
    "stage_codes": [0, 0, 1],
    "modality_codes": [0, -1, 1],
    "name_codes": [0, 1, 1],
    "seq": [0, 1, 2],
    "host_n": 2,
    "host_kind_codes": [0, 3],            # h2d, sync
    "host_bytes": [4096.0, 0.0],
    "host_stage_codes": [0, 1],
    "host_modality_codes": [0, -1],
    "host_pass_codes": [0, 0],
    "host_name_codes": [0, 0],
    "host_seq": [0, 1],
    "stage_table": ["encoder", "head"],
    "modality_table": ["image", "audio"],
    "name_table": ["conv2d", "relu"],
    "host_name_table": ["h2d_copy"],
    "meta": {"1": {"note": "fixture"}},
    "host_meta": {},
}


def _payload(schema: int) -> dict:
    columns = {k: (list(v) if isinstance(v, list) else v)
               for k, v in _COLUMNS.items()}
    if schema >= 3:
        columns["pass_codes"] = [0, 0, 2]  # forward, forward, backward
    else:
        del columns["host_pass_codes"]  # v2 predates passes entirely
    payload = {
        "schema": schema,
        "key": {
            "workload": "fixture",
            "fusion": "concat",
            "unimodal": None,
            "batch_size": 4,
            "seed": 0,
            "backend": "meta",
            # A fingerprint no live checkout will ever produce: these
            # entries are permanently stale, which is exactly what a cache
            # written by an old build looks like.
            "code_version": "fix7ure000000",
            "mode": "inference",
        },
        "model_name": "fixture_model",
        "parameters": 10,
        "parameter_bytes": 40,
        "input_bytes": 64,
        "modalities": ["image", "audio"],
        "columns": columns,
    }
    if schema >= 4:
        payload["extra"] = {"origin": f"fixture-v{schema}"}
    return payload


def main() -> None:
    for schema in (2, 3, 4):
        path = HERE / f"store_v{schema}.json.gz"
        # mtime=0 keeps the bytes reproducible run-to-run.
        with gzip.GzipFile(path, "wb", mtime=0) as fh:
            fh.write(json.dumps(_payload(schema), sort_keys=True).encode())
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
