"""Timeloop-style export."""

import pytest

from repro import nn
from repro.data.synthetic import random_batch
from repro.export.timeloop import export_problems, export_summary, kernel_to_problem
from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Tracer
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def trace():
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 2, seed=0)
    tracer = Tracer()
    with tracer.activate(), nn.no_grad():
        model(batch)
    return tracer.finish()


class TestKernelToProblem:
    def test_gemm_export(self):
        kernel = KernelEvent("gemm", KernelCategory.GEMM, 1e6, 1e3, 1e3, 100,
                             meta={"m": 8, "n": 16, "k": 32})
        problem = kernel_to_problem(kernel)
        assert problem["problem"]["shape"] == "gemm"
        assert problem["problem"] == {"shape": "gemm", "M": 8, "N": 16, "K": 32}

    def test_conv_export(self):
        kernel = KernelEvent("conv", KernelCategory.CONV, 1e6, 1e3, 1e3, 100,
                             meta={"kh": 3, "kw": 3, "stride": 2})
        problem = kernel_to_problem(kernel)
        assert problem["problem"]["R"] == 3
        assert problem["problem"]["Wstride"] == 2

    def test_non_exportable_returns_none(self):
        kernel = KernelEvent("relu", KernelCategory.RELU, 1.0, 1.0, 1.0, 1)
        assert kernel_to_problem(kernel) is None

    def test_gemm_without_meta_skipped(self):
        kernel = KernelEvent("gemm", KernelCategory.GEMM, 1.0, 1.0, 1.0, 1)
        assert kernel_to_problem(kernel) is None


class TestExport:
    def test_problems_from_real_trace(self, trace):
        problems = export_problems(trace)
        assert problems, "expected conv/gemm problems from AV-MNIST"
        shapes = {p["problem"]["shape"] for p in problems}
        assert shapes == {"gemm", "cnn-layer"}
        assert all(p["stage"] in ("encoder", "fusion", "head") for p in problems)

    def test_summary(self, trace):
        summary = export_summary(trace)
        assert summary["num_problems"] == len(export_problems(trace))
        assert summary["total_flops"] == trace.total_flops
        assert set(summary["modalities"]) == {"image", "audio"}
