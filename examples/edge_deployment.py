"""Edge deployment planning: pick a batch size for a Jetson board.

Reproduces the paper's Sec. 5.2 workflow as a downstream user would apply
it: capture the workload's trace once, re-price it on each candidate
device, and find the largest batch size that stays clear of the
unified-memory capacity cliff.

    PYTHONPATH=src python examples/edge_deployment.py
"""

from repro.core.analysis.edge import EDGE_SCALE
from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import format_seconds, format_table
from repro.trace.timeline import scale_trace
from repro.workloads.registry import get_workload


def main() -> None:
    info = get_workload("avmnist")
    model = info.build("slfs", seed=0)
    profiler = MMBenchProfiler("2080ti")

    rows = []
    recommended: dict[str, int] = {}
    for device in ("nano", "orin", "2080ti"):
        for batch_size in (40, 80, 160, 320):
            batch = random_batch(model.shapes, batch_size, seed=0)
            # Extrapolate to full-scale AV-MNIST (see DESIGN.md).
            trace = scale_trace(profiler.capture(model, batch), EDGE_SCALE)
            report = profiler.price(
                model, trace, batch_size, device=device,
                model_bytes=model.parameter_bytes() * EDGE_SCALE,
                input_bytes=model.input_bytes(batch_size) * EDGE_SCALE,
            )
            per_task = report.total_time / batch_size
            rows.append([
                device, batch_size, format_seconds(per_task),
                f"{report.memory_pressure:.2f}",
                "THRASHING" if report.slowdown > 1.0 else "ok",
            ])
            if report.slowdown == 1.0:
                best = recommended.get(device)
                if best is None or batch_size > best:
                    recommended[device] = batch_size

    print(format_table(
        ["device", "batch", "time/task", "mem pressure", "status"], rows,
        title="AV-MNIST (slfs) deployment sweep",
    ))
    print()
    for device, batch in sorted(recommended.items()):
        print(f"largest safe batch on {device}: {batch}")


if __name__ == "__main__":
    main()
