"""Fusion-scheme search: accuracy vs device time for every Table-1 operator.

Sec. 4.2.2: "It's of great importance to design or search for the most
effective fusion method." This example runs that search for MuJoCo Push:
every applicable fusion operator is trained on the same data and profiled
on the same device model, producing the accuracy/latency frontier a system
designer would use.

    PYTHONPATH=src python examples/fusion_search.py
"""

from repro.core.train import train_model
from repro.data.generators import LatentMultimodalDataset
from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import format_seconds, format_table
from repro.workloads.registry import get_workload


def main() -> None:
    info = get_workload("mujoco_push")
    dataset = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=20)
    profiler = MMBenchProfiler("2080ti")

    rows = []
    results = {}
    for fusion in info.fusions:
        model = info.build(fusion, seed=0)
        trained = train_model(model, dataset, n_train=256, n_test=160, epochs=4)
        profile = profiler.profile(model, random_batch(info.shapes, 32, seed=0))
        fusion_time = profile.report.stage_time().get("fusion", 0.0)
        results[fusion] = (trained.metric, profile.total_time)
        rows.append([
            fusion, f"{trained.metric:.4f}",
            format_seconds(profile.total_time),
            format_seconds(fusion_time),
            f"{profile.parameters:,}",
        ])

    print(format_table(
        ["fusion", "MSE (lower=better)", "batch-32 latency", "fusion-stage time",
         "params"], rows,
        title="MuJoCo Push fusion search (accuracy vs simulated 2080Ti latency)",
    ))

    best = min(results, key=lambda f: results[f][0])
    print(f"\nbest fusion by MSE: {best}")


if __name__ == "__main__":
    main()
