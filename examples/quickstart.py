"""Quickstart: build a workload, profile it, and train it.

Runs in well under a minute on a laptop::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro.core.suite import BenchmarkSuite, RunConfig
from repro.core.train import train_model
from repro.data.generators import LatentMultimodalDataset
from repro.workloads.registry import get_workload


def main() -> None:
    suite = BenchmarkSuite(device="2080ti")

    # 1. The workload inventory (Table 3).
    print("MMBench workloads:", ", ".join(suite.workloads()))

    # 2. Profile one inference batch of the audio-visual digit workload.
    #    Inputs come from the dataset-free abstraction (random tensors with
    #    the dataset's shapes), so no download is needed.
    config = RunConfig(workload="avmnist", fusion="concat", batch_size=32)
    profile = suite.run_inference(config)
    print()
    print(suite.summarize(profile))

    # 3. The same trace re-priced on a Jetson Nano device model.
    nano = suite.run_inference(RunConfig(workload="avmnist", batch_size=32,
                                         device="nano"))
    slowdown = nano.total_time / profile.total_time
    print(f"\nJetson Nano is {slowdown:.1f}x slower on the same batch.")

    # 4. Train the model on a learnable synthetic multi-modal dataset and
    #    compare against a single-modality baseline (the Figure 4 shape).
    info = get_workload("avmnist")
    dataset = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=3)
    fused = train_model(info.build("concat", seed=0), dataset,
                        n_train=256, n_test=192, epochs=5)
    audio = train_model(info.build_unimodal("audio", seed=0), dataset,
                        n_train=256, n_test=192, epochs=5)
    print(f"\naccuracy: fused={fused.metric:.3f} vs audio-only={audio.metric:.3f}")
    assert fused.metric > audio.metric


if __name__ == "__main__":
    main()
