"""Serving under an SLO: static batch-size planning vs adaptive batching.

Two answers to the Sec. 5.1 deployment question "what batch size should
the OS schedule for an open request stream?":

1. The *static* answer — sweep fixed batch sizes with ``serving_sweep``
   at the traffic you planned for, and let ``best_batch_for_slo`` pick
   the largest batch whose p99 meets the target.
2. The *dynamic* answer — serve with a batching policy and let it choose
   per dispatch. The comparison below pits a no-batching deployment
   (fixed batch 1, the per-request-latency optimum at light load), a
   classic timeout batcher, and the cost-model-driven
   ``AdaptiveSLOPolicy`` against the same Poisson streams as traffic
   grows past the planned rate.

    PYTHONPATH=src python examples/serving_slo.py
"""

from repro.core.analysis.serving import best_batch_for_slo, serving_sweep
from repro.profiling.report import format_table
from repro.serving import (
    AdaptiveSLOPolicy,
    FixedBatchPolicy,
    ProfiledCostModel,
    TimeoutBatchPolicy,
    simulate,
)

WORKLOAD = "avmnist"
DEVICES = ("2080ti", "nano")
SLO = 20e-3  # 20 ms p99 target
N_REQUESTS = 4_000


def main() -> None:
    cost = ProfiledCostModel(WORKLOAD)
    # Aggregate req/s the pool sustains with no batching at all.
    capacity = sum(1.0 / cost.latency(d, 1) for d in DEVICES)

    # 1. Static planning: fixed-batch sweep at the rate we planned for.
    planned = 0.8 * capacity
    sweep = serving_sweep(WORKLOAD, batch_sizes=(1, 8, 40, 100, 400),
                          n_tasks=N_REQUESTS, arrival_rate=planned,
                          device=DEVICES[0])
    rows = [[b, f"{r.throughput:,.0f} req/s", f"{r.p99_latency * 1e3:.2f} ms",
             "yes" if r.p99_latency <= SLO else "NO"]
            for b, r in sorted(sweep.items())]
    print(format_table(["batch", "throughput", "p99 latency", f"meets {SLO * 1e3:.0f}ms"],
                       rows, title=f"Fixed batch sweep on {DEVICES[0]} at {planned:,.0f} req/s"))
    best = best_batch_for_slo(sweep, p99_slo=SLO)
    print(f"\nbest_batch_for_slo -> {best} (largest fixed batch meeting the SLO "
          f"at the planned rate)\n")

    # 2. The plan meets reality: the same policies under growing traffic.
    policies = {
        "no batching": lambda: FixedBatchPolicy(1),
        "timeout(64, 5ms)": lambda: TimeoutBatchPolicy(64, 5e-3),
        f"adaptive({SLO * 1e3:.0f}ms)": lambda: AdaptiveSLOPolicy(SLO),
    }
    rows = []
    for factor in (0.5, 1.0, 1.5, 2.0):
        rate = factor * capacity
        cells = [f"{factor:.1f}x ({rate:,.0f}/s)"]
        for build in policies.values():
            report = simulate(cost, build(), devices=DEVICES,
                              n_requests=N_REQUESTS, arrival_rate=rate, seed=0)
            cells.append(f"{report.p99_latency * 1e3:.2f} ms "
                         f"({report.slo_attainment(SLO):.0%})")
        rows.append(cells)
    print(format_table(
        ["load", *policies], rows,
        title=f"p99 (SLO attainment) vs load: {WORKLOAD} on {'+'.join(DEVICES)}"))
    print("\nNo batching wins nothing and collapses past 1.0x capacity; the\n"
          "timeout batcher pays its formation wait even when idle; the adaptive\n"
          "policy re-chooses the batch per dispatch from the profiled cost model\n"
          "and holds the SLO at every load level.")


if __name__ == "__main__":
    main()
