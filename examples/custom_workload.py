"""Extend MMBench with a new application: a smart-home event detector.

Demonstrates the extension path a downstream user takes: define the
modality shapes, pick encoders from the zoo (or write your own
``repro.nn`` module), choose a Table-1 fusion operator, wrap everything in
``MultiModalModel`` — and immediately get staged profiling, device
re-pricing, and trainability for free.

    PYTHONPATH=src python examples/custom_workload.py
"""

import numpy as np

from repro.core.train import train_model
from repro.data.generators import ChannelSpec, LatentMultimodalDataset
from repro.data.shapes import ModalityKind, ModalitySpec, TaskSpec, WorkloadShapes
from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import profile_summary
from repro.workloads.base import MultiModalModel
from repro.workloads.encoders import CNNEncoder, SequenceGRUEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import ClassificationHead

# 1. Declare the new workload's modalities and task: a door camera frame,
#    a microphone spectrogram, and a motion-sensor time series classify a
#    household event into 6 categories.
SMART_HOME = WorkloadShapes(
    name="smart_home",
    modalities=(
        ModalitySpec("camera", ModalityKind.IMAGE, (3, 32, 32)),
        ModalitySpec("microphone", ModalityKind.AUDIO, (1, 20, 20)),
        ModalitySpec("motion", ModalityKind.SEQUENCE, (24, 6)),
    ),
    task=TaskSpec(kind="classification", num_classes=6),
)


def build_smart_home(fusion: str = "attention", seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    dim = 32
    encoders = {
        "camera": CNNEncoder(3, dim, rng, input_hw=(32, 32)),
        "microphone": CNNEncoder(1, dim, rng, input_hw=(20, 20)),
        "motion": SequenceGRUEncoder(6, dim, rng),
    }
    fusion_module = make_fusion(fusion, [dim] * 3, dim, rng=rng)
    head = ClassificationHead(dim, SMART_HOME.task.num_classes, rng)
    return MultiModalModel(f"smart_home[{fusion}]", SMART_HOME, encoders,
                           fusion_module, head)


def main() -> None:
    model = build_smart_home()

    # 2. Profile it like any built-in workload (dataset-free inputs).
    batch = random_batch(SMART_HOME, 16, seed=0)
    result = MMBenchProfiler("2080ti").profile(model, batch)
    print(profile_summary(result))

    # 3. Train it on a synthetic dataset where the microphone is the major
    #    modality (glass-break sounds) but motion carries complementary cues.
    channels = {
        "camera": ChannelSpec(snr=0.8, corrupt_prob=0.3),
        "microphone": ChannelSpec(snr=1.4, corrupt_prob=0.1),
        "motion": ChannelSpec(snr=0.9, corrupt_prob=0.25),
    }
    dataset = LatentMultimodalDataset(SMART_HOME, channels, seed=7)
    trained = train_model(model, dataset, n_train=256, n_test=128, epochs=5)
    print(f"\nsmart-home event accuracy: {trained.metric:.3f} (chance = 0.167)")
    assert trained.metric > 0.4


if __name__ == "__main__":
    main()
