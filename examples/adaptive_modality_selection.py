"""Adaptive modality selection (the paper's Sec. 4.2.3 observation).

"Smartly activating one of the encoders can fulfill the requirements in
most of the cases" — this example quantifies that tradeoff: it trains
per-modality models and the fused model on AV-MNIST, partitions the
correctly-processed samples (Figure 5), and reports how much compute an
adaptive major-modality-first policy saves at what accuracy cost.

    PYTHONPATH=src python examples/adaptive_modality_selection.py
"""

from repro.core.analysis.modality import exclusive_correct_analysis
from repro.data.synthetic import random_batch
from repro.profiling.flops import flops_per_sample
from repro.profiling.report import format_table
from repro.workloads.registry import get_workload


def main() -> None:
    # 1. Figure-5 partition on AV-MNIST.
    sets = exclusive_correct_analysis(workloads=("avmnist",),
                                      n_train=256, n_test=192, epochs=5)[0]
    rows = [[sets.major_modality + " (major)", f"{sets.major_fraction:.1%}"]]
    rows += [[m, f"{v:.1%}"] for m, v in sets.minor_fractions.items()]
    rows += [["fusion-only", f"{sets.fusion_only_fraction:.1%}"]]
    print(format_table(["handled exclusively by", "share of correct samples"], rows,
                       title="AV-MNIST exclusive-correct partition (Figure 5)"))

    # 2. Compute cost of each execution plan.
    info = get_workload("avmnist")
    full = info.build("concat", seed=0)
    major_only = info.build_unimodal(sets.major_modality, seed=0)
    full_cost = flops_per_sample(full, random_batch(info.shapes, 8, seed=0))
    major_cost = flops_per_sample(major_only,
                                  random_batch(major_only.shapes, 8, seed=0))

    # Adaptive policy: run the major encoder always; escalate to the full
    # fused model only for low-confidence samples (approximated here by the
    # share the major modality cannot handle alone).
    escalation_rate = 1.0 - sets.major_fraction
    adaptive_cost = major_cost + escalation_rate * full_cost

    print()
    print(f"always-fused cost:      {full_cost:12.0f} FLOPs/sample")
    print(f"major-modality cost:    {major_cost:12.0f} FLOPs/sample")
    print(f"adaptive policy cost:   {adaptive_cost:12.0f} FLOPs/sample "
          f"(escalates on {escalation_rate:.0%} of samples)")
    print(f"adaptive saving vs always-fused: "
          f"{1.0 - adaptive_cost / full_cost:.0%}")


if __name__ == "__main__":
    main()
