"""Energy budgeting on the edge: what does each modality cost?

The paper's modality analysis suggests throttling less-important encoders
to save energy (Sec. 4.2.3) while warning about the accuracy risk. This
example puts numbers on both sides for AV-MNIST on a Jetson Nano model:
per-modality energy from the hardware model, and the accuracy the
robustness analysis measures when a modality is actually dropped.

    PYTHONPATH=src python examples/energy_budget.py
"""

from repro.core.analysis.robustness import robustness_analysis
from repro.data.synthetic import random_batch
from repro.hw.energy import modality_energy, report_energy
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import format_table
from repro.workloads.registry import get_workload


def main() -> None:
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 32, seed=0)
    profiler = MMBenchProfiler("nano")
    profile = profiler.profile(model, batch)

    total = report_energy(profile.report)
    per_modality = modality_energy(profile.report)

    # Accuracy cost of dropping each modality, from the robustness analysis.
    robustness = robustness_analysis("avmnist", n_train=256, n_test=192, epochs=5)

    rows = []
    for modality, joules in per_modality.items():
        saving = joules / total.device_total
        accuracy_drop = -robustness.degradation(modality)
        rows.append([
            modality, f"{joules * 1e3:.3f} mJ", f"{saving:.0%}",
            f"{robustness.dropped_modality_metric[modality]:.3f}",
            f"{accuracy_drop:+.3f}",
        ])
    print(format_table(
        ["modality", "encoder energy", "device-energy saving if skipped",
         "accuracy without it", "accuracy cost"],
        rows,
        title=(f"AV-MNIST on Jetson Nano — batch-32 device energy "
               f"{total.device_total * 1e3:.2f} mJ, clean accuracy "
               f"{robustness.clean_metric:.3f}"),
    ))
    print()
    print("Reading: skipping the audio encoder saves its energy share at a "
          "small accuracy cost;\nskipping the image (major) modality is "
          "catastrophic — the paper's Sec. 4.2.3 warning.")


if __name__ == "__main__":
    main()
